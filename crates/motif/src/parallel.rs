//! Parallel clique-degree computation.
//!
//! Section 6.3 of the paper notes that its approximation solutions
//! parallelize because the underlying (k, Ψ)-core machinery does: the
//! dominant cost is the initial clique-degree pass, and the kClist
//! recursion is embarrassingly parallel over root vertices (every clique
//! is discovered exactly once, from its lowest-ranked member). This module
//! implements that over std's scoped threads: the degeneracy DAG is
//! built once and shared read-only; each worker owns a root range and a
//! private degree accumulator, merged at the end.

use std::thread;

use dsd_graph::{Graph, VertexId, VertexSet};

use crate::kclist::{build_out_csr, intersect_sorted, OutCsr};

fn rec_degrees(
    out: &OutCsr,
    clique: &mut Vec<VertexId>,
    cand: Vec<VertexId>,
    h: usize,
    pool: &mut Vec<Vec<VertexId>>,
    deg: &mut [u64],
) {
    if clique.len() + 1 == h {
        // Each completed clique credits every member once.
        for &member in clique.iter() {
            deg[member as usize] += cand.len() as u64;
        }
        for &u in &cand {
            deg[u as usize] += 1;
        }
        return;
    }
    if clique.len() + cand.len() < h {
        return;
    }
    for &u in cand.iter() {
        let mut next = pool.pop().unwrap_or_default();
        next.clear();
        intersect_sorted(&cand, out.row(u), &mut next);
        if clique.len() + 1 + next.len() >= h {
            clique.push(u);
            rec_degrees(out, clique, std::mem::take(&mut next), h, pool, deg);
            clique.pop();
        }
        pool.push(next);
    }
}

/// Parallel [`crate::clique_degrees`]: identical output, `threads` workers.
///
/// Falls back to a single-threaded pass for `threads <= 1`.
pub fn clique_degrees_parallel(g: &Graph, h: usize, threads: usize) -> Vec<u64> {
    clique_degrees_parallel_within(g, h, &VertexSet::full(g.num_vertices()), threads)
}

/// Alive-restricted variant of [`clique_degrees_parallel`].
pub fn clique_degrees_parallel_within(
    g: &Graph,
    h: usize,
    alive: &VertexSet,
    threads: usize,
) -> Vec<u64> {
    assert!(h >= 1);
    let n = g.num_vertices();
    if h == 1 {
        let mut deg = vec![0u64; n];
        for v in alive.iter() {
            deg[v as usize] = 1;
        }
        return deg;
    }
    if threads <= 1 || n < 256 {
        return crate::kclist::clique_degrees_within(g, h, alive);
    }
    let out = build_out_csr(g, alive);
    let roots: Vec<VertexId> = alive.iter().collect();
    // Static interleaved partition: root costs are skewed (hubs first in id
    // order would imbalance contiguous chunks; striding mixes them).
    let results = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let out = &out;
            let roots = &roots;
            handles.push(scope.spawn(move || {
                let mut deg = vec![0u64; n];
                let mut clique = Vec::with_capacity(h);
                let mut pool: Vec<Vec<VertexId>> = Vec::new();
                for &v in roots.iter().skip(t).step_by(threads) {
                    clique.push(v);
                    rec_degrees(
                        out,
                        &mut clique,
                        out.row(v).to_vec(),
                        h,
                        &mut pool,
                        &mut deg,
                    );
                    clique.pop();
                }
                deg
            }));
        }
        handles
            .into_iter()
            .map(|hnd| hnd.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut total = vec![0u64; n];
    for local in results {
        for (acc, x) in total.iter_mut().zip(local) {
            *acc += x;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kclist::clique_degrees_within;
    use dsd_graph::GraphBuilder;

    fn random_graph(seed: u64, n: usize, percent: u64) -> Graph {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if next() % 1000 < percent {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = random_graph(3, 400, 25);
        let alive = VertexSet::full(400);
        for h in 2..=4usize {
            let seq = clique_degrees_within(&g, h, &alive);
            for threads in [1, 2, 4, 7] {
                let par = clique_degrees_parallel_within(&g, h, &alive, threads);
                assert_eq!(par, seq, "h = {h}, threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_respects_alive_mask() {
        let g = random_graph(9, 500, 30);
        let mut alive = VertexSet::full(500);
        for v in (0..500u32).step_by(3) {
            alive.remove(v);
        }
        let seq = clique_degrees_within(&g, 3, &alive);
        let par = clique_degrees_parallel_within(&g, 3, &alive, 4);
        assert_eq!(par, seq);
    }

    #[test]
    fn small_graphs_fall_back() {
        let g = random_graph(5, 50, 100);
        let seq = crate::kclist::clique_degrees(&g, 3);
        let par = clique_degrees_parallel(&g, 3, 8);
        assert_eq!(par, seq);
    }

    #[test]
    fn h1_counts_alive_vertices() {
        let g = random_graph(7, 300, 10);
        let deg = clique_degrees_parallel(&g, 1, 4);
        assert!(deg.iter().all(|&d| d == 1));
    }
}
