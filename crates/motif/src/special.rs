//! Appendix-D fast paths: star and diamond (loop) pattern degrees.
//!
//! For an x-star, the pattern-degree of `v` decomposes into "v is the
//! centre" and "v is a tail of a neighbouring centre", both closed-form
//! binomials — `O(d)` per vertex instead of enumerating `O(dˣ)` instances.
//! For the diamond (4-cycle), grouping length-2 paths by their far endpoint
//! gives `Σ C(y_w, 2)` in `O(d²)`. The same groupings yield the decrement
//! lists used when a vertex is peeled (Algorithm 3's inner loop), reducing
//! pattern-core decomposition from `O(n·dˣ)` to `O(n·d²)` as the paper
//! notes.

use std::collections::HashMap;

use dsd_graph::{Graph, VertexId, VertexSet};

use crate::binomial;

/// Alive-restricted degree: number of neighbours of `v` inside `alive`.
#[inline]
fn adeg(g: &Graph, alive: &VertexSet, v: VertexId) -> u64 {
    g.neighbors(v)
        .iter()
        .filter(|&&u| alive.contains(u))
        .count() as u64
}

/// x-star pattern-degrees of all vertices of `g[alive]` (Appendix D.1.1).
///
/// `deg(v) = C(y, x) + Σ_{u ∈ N(v)} C(z_u − 1, x − 1)` with `y`, `z_u`
/// alive-restricted degrees.
pub fn star_degrees(g: &Graph, x: usize, alive: &VertexSet) -> Vec<u64> {
    assert!(x >= 2);
    let x = x as u64;
    let n = g.num_vertices();
    // Precompute alive degrees once: the formula touches each edge twice.
    let degs: Vec<u64> = (0..n as u32)
        .map(|v| {
            if alive.contains(v) {
                adeg(g, alive, v)
            } else {
                0
            }
        })
        .collect();
    let mut out = vec![0u64; n];
    for v in alive.iter() {
        let y = degs[v as usize];
        let mut d = binomial(y, x);
        for &u in g.neighbors(v) {
            if alive.contains(u) {
                d = d.saturating_add(binomial(degs[u as usize].saturating_sub(1), x - 1));
            }
        }
        out[v as usize] = d;
    }
    out
}

/// Per-vertex pattern-degree losses caused by removing `v` from `g[alive]`
/// for the x-star pattern (Appendix D.1.2). `v` must still be in `alive`.
///
/// Returns `(u, amount)` pairs for every *other* vertex whose degree drops;
/// the removed vertex's own loss is simply its current degree.
pub fn star_decrements(
    g: &Graph,
    x: usize,
    alive: &VertexSet,
    v: VertexId,
) -> Vec<(VertexId, u64)> {
    assert!(x >= 2);
    debug_assert!(alive.contains(v), "compute decrements before removing v");
    let x = x as u64;
    let y = adeg(g, alive, v);
    let mut acc: HashMap<VertexId, u64> = HashMap::new();
    for &u in g.neighbors(v) {
        if !alive.contains(u) {
            continue;
        }
        let z_u = adeg(g, alive, u);
        // Stars centred at v with u as a tail, plus stars centred at u with
        // v as a tail.
        let one_hop = binomial(y - 1, x - 1).saturating_add(binomial(z_u - 1, x - 1));
        if one_hop > 0 {
            *acc.entry(u).or_insert(0) += one_hop;
        }
        // Stars centred at u containing both v and w as tails.
        if x >= 2 && z_u >= 2 {
            let two_hop = binomial(z_u - 2, x - 2);
            if two_hop > 0 {
                for &w in g.neighbors(u) {
                    if w != v && alive.contains(w) {
                        *acc.entry(w).or_insert(0) += two_hop;
                    }
                }
            }
        }
    }
    let mut out: Vec<(VertexId, u64)> = acc.into_iter().collect();
    out.sort_unstable();
    out
}

/// Diamond (4-cycle) pattern-degrees of all vertices (Appendix D.2.1):
/// `deg(v) = Σ_{w ≠ v} C(|N(v) ∩ N(w)|, 2)` over alive vertices.
pub fn diamond_degrees(g: &Graph, alive: &VertexSet) -> Vec<u64> {
    let n = g.num_vertices();
    let mut out = vec![0u64; n];
    let mut count = vec![0u32; n];
    let mut touched: Vec<VertexId> = Vec::new();
    for v in alive.iter() {
        for &a in g.neighbors(v) {
            if !alive.contains(a) {
                continue;
            }
            for &w in g.neighbors(a) {
                if w != v && alive.contains(w) {
                    if count[w as usize] == 0 {
                        touched.push(w);
                    }
                    count[w as usize] += 1;
                }
            }
        }
        let mut d = 0u64;
        for &w in &touched {
            d = d.saturating_add(binomial(count[w as usize] as u64, 2));
            count[w as usize] = 0;
        }
        touched.clear();
        out[v as usize] = d;
    }
    out
}

/// Per-vertex diamond-degree losses caused by removing `v` (Appendix
/// D.2.2). `v` must still be in `alive`.
///
/// For each far endpoint `w` with `c` common alive neighbours: `w` loses
/// `C(c, 2)` and each common neighbour loses `c − 1`.
pub fn diamond_decrements(g: &Graph, alive: &VertexSet, v: VertexId) -> Vec<(VertexId, u64)> {
    debug_assert!(alive.contains(v), "compute decrements before removing v");
    let n = g.num_vertices();
    let mut count = vec![0u32; n];
    let mut touched: Vec<VertexId> = Vec::new();
    for &a in g.neighbors(v) {
        if !alive.contains(a) {
            continue;
        }
        for &w in g.neighbors(a) {
            if w != v && alive.contains(w) {
                if count[w as usize] == 0 {
                    touched.push(w);
                }
                count[w as usize] += 1;
            }
        }
    }
    let mut acc: HashMap<VertexId, u64> = HashMap::new();
    for &w in &touched {
        let c = count[w as usize] as u64;
        if c >= 2 {
            *acc.entry(w).or_insert(0) += binomial(c, 2);
        }
        if c >= 2 {
            // Each middle vertex a ∈ N(v) ∩ N(w) participates in c − 1
            // dying cycles through (v, w).
            for &a in g.neighbors(v) {
                if alive.contains(a) && g.has_edge(a, w) {
                    *acc.entry(a).or_insert(0) += c - 1;
                }
            }
        }
        count[w as usize] = 0;
    }
    let mut out: Vec<(VertexId, u64)> = acc.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::pattern_enum::pattern_degrees;
    use dsd_graph::GraphBuilder;

    fn random_graph(seed: u64, n: usize, percent: u64) -> Graph {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if next() % 100 < percent {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn star_degrees_match_generic_enumeration() {
        for seed in 1..8u64 {
            let g = random_graph(seed, 9, 40);
            let alive = VertexSet::full(9);
            for x in 2..=3usize {
                let fast = star_degrees(&g, x, &alive);
                let slow = pattern_degrees(&g, &Pattern::star(x), &alive);
                assert_eq!(fast, slow, "seed {seed} x {x}");
            }
        }
    }

    #[test]
    fn star_degrees_respect_alive_mask() {
        let g = random_graph(3, 10, 50);
        let mut alive = VertexSet::full(10);
        alive.remove(0);
        alive.remove(5);
        let fast = star_degrees(&g, 2, &alive);
        let slow = pattern_degrees(&g, &Pattern::two_star(), &alive);
        assert_eq!(fast, slow);
        assert_eq!(fast[0], 0);
    }

    #[test]
    fn diamond_degrees_match_generic_enumeration() {
        for seed in 1..8u64 {
            let g = random_graph(seed * 7 + 1, 9, 45);
            let alive = VertexSet::full(9);
            let fast = diamond_degrees(&g, &alive);
            let slow = pattern_degrees(&g, &Pattern::diamond(), &alive);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn star_decrements_match_before_after_difference() {
        for seed in 1..6u64 {
            let g = random_graph(seed * 13 + 2, 8, 45);
            for x in 2..=3usize {
                let mut alive = VertexSet::full(8);
                let p = Pattern::star(x);
                for victim in 0..4u32 {
                    if !alive.contains(victim) {
                        continue;
                    }
                    let before = pattern_degrees(&g, &p, &alive);
                    let dec = star_decrements(&g, x, &alive, victim);
                    alive.remove(victim);
                    let after = pattern_degrees(&g, &p, &alive);
                    let mut expect: HashMap<VertexId, u64> = HashMap::new();
                    for v in alive.iter() {
                        let diff = before[v as usize] - after[v as usize];
                        if diff > 0 {
                            expect.insert(v, diff);
                        }
                    }
                    let got: HashMap<VertexId, u64> = dec.into_iter().collect();
                    assert_eq!(got, expect, "seed {seed} x {x} victim {victim}");
                }
            }
        }
    }

    #[test]
    fn diamond_decrements_match_before_after_difference() {
        for seed in 1..6u64 {
            let g = random_graph(seed * 31 + 5, 8, 50);
            let p = Pattern::diamond();
            let mut alive = VertexSet::full(8);
            for victim in 0..4u32 {
                let before = pattern_degrees(&g, &p, &alive);
                let dec = diamond_decrements(&g, &alive, victim);
                alive.remove(victim);
                let after = pattern_degrees(&g, &p, &alive);
                let mut expect: HashMap<VertexId, u64> = HashMap::new();
                for v in alive.iter() {
                    let diff = before[v as usize] - after[v as usize];
                    if diff > 0 {
                        expect.insert(v, diff);
                    }
                }
                let got: HashMap<VertexId, u64> = dec.into_iter().collect();
                assert_eq!(got, expect, "seed {seed} victim {victim}");
            }
        }
    }

    #[test]
    fn star_degree_in_pure_star_graph() {
        // Star with centre 0 and 5 tails: 3-star degree of centre = C(5,3),
        // of each tail = C(4,2).
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let alive = VertexSet::full(6);
        let deg = star_degrees(&g, 3, &alive);
        assert_eq!(deg[0], binomial(5, 3));
        assert_eq!(deg[1], binomial(4, 2));
    }

    #[test]
    fn diamond_degree_in_plain_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let alive = VertexSet::full(4);
        assert_eq!(diamond_degrees(&g, &alive), vec![1, 1, 1, 1]);
    }
}
