//! `dsd-motif`: clique and pattern enumeration substrate.
//!
//! Every algorithm in the paper is parameterized by an h-clique or a general
//! pattern Ψ; the inner loops are "how many instances of Ψ contain v" and
//! "which instances die when v is removed". This crate provides:
//!
//! * [`kclist`] — the h-clique listing algorithm of Danisch, Balalau and
//!   Sozio (WWW 2018) over a degeneracy-oriented DAG, with alive-mask
//!   restriction and per-vertex clique degrees;
//! * [`pattern`] — small pattern graphs ([`Pattern`]): the paper's Figure 7
//!   menu (2-star, 3-star, c3-star, diamond, 2-triangle, 3-triangle,
//!   basket) plus arbitrary h-cliques and user-defined patterns, with
//!   automorphism counting;
//! * [`pattern_enum`] — backtracking enumeration of non-induced pattern
//!   instances (distinct edge sets), per-vertex pattern-degrees, and
//!   instance grouping by vertex set (for the `construct+` flow network);
//! * [`special`] — the Appendix-D fast paths for star and diamond (4-cycle)
//!   pattern degrees and decremental updates.
//!
//! ```
//! use dsd_graph::{Graph, VertexSet};
//! use dsd_motif::{count_cliques, clique_degrees, Pattern, pattern_enum};
//!
//! // K4 minus an edge: two triangles sharing an edge.
//! let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
//! assert_eq!(count_cliques(&g, 3), 2);
//! assert_eq!(clique_degrees(&g, 3), vec![2, 2, 1, 1]);
//!
//! let alive = VertexSet::full(4);
//! let wedges = pattern_enum::count_instances(&g, &Pattern::two_star(), &alive);
//! assert_eq!(wedges, 8); // Σ C(deg, 2) = 3 + 3 + 1 + 1
//! ```

pub mod kclist;
pub mod parallel;
pub mod pattern;
pub mod pattern_enum;
pub mod special;
pub mod store;

pub use kclist::{
    clique_degrees, clique_degrees_within, count_cliques, count_cliques_within, for_each_clique,
    for_each_clique_containing, for_each_clique_within, for_each_clique_within_until, CliqueLister,
    CliqueScratch,
};
pub use parallel::{clique_degrees_parallel, clique_degrees_parallel_within};
pub use pattern::{Pattern, PatternKind};
pub use pattern_enum::{
    count_instances, for_each_instance_until, for_each_owned_instance_until, group_instances,
    instances, instances_containing, pattern_degrees, InstanceGroup, PatternInstance,
};
pub use store::{InstanceStore, StoreBuildStats, StoreError};

/// Binomial coefficient `C(n, k)` saturating at `u64::MAX`.
///
/// Used throughout for clique-degree upper bounds (`γ(v, Ψ) = C(x, h-1)` in
/// CoreApp) and the star-pattern degree formulas.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::binomial;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(0, 0), 1);
    }

    #[test]
    fn binomial_saturates() {
        assert_eq!(binomial(200, 100), u64::MAX);
    }
}
