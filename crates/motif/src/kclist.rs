//! h-clique listing on a degeneracy-oriented DAG (kClist).
//!
//! Following Danisch, Balalau and Sozio (WWW 2018) — the clique enumerator
//! the paper itself uses — edges are oriented along a degeneracy ordering,
//! so every h-clique is listed exactly once as an increasing-rank chain. On
//! graphs with degeneracy `c`, out-neighbourhoods have size ≤ `c`, which is
//! what makes 5- and 6-clique listing feasible on sparse skewed graphs.
//!
//! Candidate intersection — the inner loop of the recursion — runs on one
//! of two kernels chosen per root: the classic two-pointer merge over
//! id-sorted out-lists, or, for dense high-degeneracy roots where merging
//! dominates, word-packed bitmaps over the root's candidate universe
//! intersected with `u64` AND + `count_ones` and iterated by
//! `trailing_zeros`. Both kernels emit the same cliques in the same order;
//! the crossover is a pure throughput decision (see
//! [`CliqueLister::with_bitset`], env toggle `DSD_NO_BITSET`).

use dsd_graph::{degeneracy_order, Graph, VertexId, VertexSet};

/// The degeneracy DAG's alive, id-sorted out-neighbour lists, flattened
/// into one offsets+targets CSR: `targets[offsets[v]..offsets[v + 1]]` is
/// `v`'s out-list. One allocation instead of one `Vec` per vertex — the
/// per-vertex headers and heap scatter of the old `Vec<Vec<_>>` shape were
/// a measurable slice of every cold enumeration (and of every rebuild an
/// eviction forces). Shared by the sequential listers here, the parallel
/// degree pass, and the sharded store build.
pub(crate) struct OutCsr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
}

impl OutCsr {
    /// The id-sorted out-neighbours of `v` (empty outside `alive`).
    #[inline]
    pub(crate) fn row(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }
}

/// Materializes the [`OutCsr`] for `g[alive]`, so intersections are linear
/// merges over contiguous memory.
pub(crate) fn build_out_csr(g: &Graph, alive: &VertexSet) -> OutCsr {
    let dag = degeneracy_order(g);
    let n = g.num_vertices();
    let mut offsets = vec![0usize; n + 1];
    let mut targets: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        if alive.contains(v) {
            let start = targets.len();
            targets.extend(dag.out_neighbors(g, v).filter(|&u| alive.contains(u)));
            targets[start..].sort_unstable();
        }
        offsets[v as usize + 1] = targets.len();
    }
    OutCsr { offsets, targets }
}

/// Reusable per-worker scratch for [`CliqueLister`] traversals: the chain
/// under construction, a pool of candidate buffers for the merge kernel,
/// and the root bitmap + word-buffer pool for the bitset kernel, so sharded
/// enumeration allocates nothing per clique.
#[derive(Default)]
pub struct CliqueScratch {
    clique: Vec<VertexId>,
    pool: Vec<Vec<VertexId>>,
    bitmap: RootBitmap,
    word_pool: Vec<Vec<u64>>,
}

/// Word-packed adjacency bitmaps over one root's out-list universe.
///
/// Local index = position in the root's id-sorted out-list, so ascending
/// bit order is ascending id order and the bitset recursion emits cliques
/// in exactly the sequence the merge recursion does. `rows` is one `u64`
/// matrix: row `j` marks, for each universe position `b`, whether
/// `universe[b]` is an out-neighbour of `universe[j]`. An intersection is
/// then a word-wise AND — the level-1 intersection is the row itself.
#[derive(Default)]
pub(crate) struct RootBitmap {
    words: usize,
    universe: Vec<VertexId>,
    rows: Vec<u64>,
}

impl RootBitmap {
    /// The root's id-sorted out-list the bitmaps are indexed by.
    #[inline]
    pub(crate) fn universe(&self) -> &[VertexId] {
        &self.universe
    }

    /// The adjacency bitmap of `universe[j]` restricted to the universe.
    #[inline]
    pub(crate) fn row(&self, j: usize) -> &[u64] {
        &self.rows[j * self.words..(j + 1) * self.words]
    }

    /// (Re)builds the bitmaps for `root`'s universe, reusing the buffers.
    /// Cost: one two-pointer merge of each candidate's out-list against the
    /// universe — the same work the merge kernel's first level does, here
    /// paid once and amortized over every deeper intersection.
    pub(crate) fn build(&mut self, out: &OutCsr, root: VertexId) {
        self.universe.clear();
        self.universe.extend_from_slice(out.row(root));
        let d = self.universe.len();
        self.words = d.div_ceil(64);
        self.rows.clear();
        self.rows.resize(d * self.words, 0);
        let RootBitmap {
            words,
            universe,
            rows,
        } = self;
        for (i, &u) in universe.iter().enumerate() {
            let row = &mut rows[i * *words..(i + 1) * *words];
            let urow = out.row(u);
            let (mut a, mut b) = (0usize, 0usize);
            while a < urow.len() && b < universe.len() {
                match urow[a].cmp(&universe[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        row[b / 64] |= 1 << (b % 64);
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }

    /// Writes the all-ones candidate mask for the full universe into `buf`
    /// (the last word trimmed to the universe length).
    pub(crate) fn full_mask(&self, buf: &mut Vec<u64>) {
        buf.clear();
        buf.resize(self.words, !0u64);
        let d = self.universe.len();
        if !d.is_multiple_of(64) {
            if let Some(last) = buf.last_mut() {
                *last = (1u64 << (d % 64)) - 1;
            }
        }
    }
}

/// Roots below this out-degree always take the merge kernel: a bitmap
/// smaller than one word can't beat a short two-pointer merge.
pub(crate) const BITSET_MIN_UNIVERSE: usize = 64;

/// The per-root crossover: bitmaps win when the merge kernel's level-1
/// work (each candidate's out-list merged against the universe, capped at
/// the universe size) comfortably exceeds the word-wise cost of building
/// and ANDing the bitmaps. The 2x margin keeps sparse roots — where the
/// merge touches a handful of elements — on the cheaper two-pointer path.
pub(crate) fn bitset_worthwhile(out: &OutCsr, universe: &[VertexId]) -> bool {
    let d = universe.len();
    if d < BITSET_MIN_UNIVERSE {
        return false;
    }
    let words = d.div_ceil(64);
    let merge_cost: usize = universe.iter().map(|&u| out.row(u).len().min(d)).sum();
    merge_cost >= 2 * d * words
}

/// A shareable h-clique enumeration context: the degeneracy-oriented DAG's
/// out-lists, built once and read by any number of workers.
///
/// Every h-clique is listed exactly once, from its lowest-ranked member
/// (its *root*), which makes root ranges an embarrassingly parallel shard
/// boundary: [`CliqueLister::for_each_rooted_until`] emits exactly the
/// cliques rooted at one vertex, so workers covering disjoint root sets
/// cover the clique set disjointly. This is the sink-based emission API the
/// instance store builds on — no intermediate `Vec<Vec<VertexId>>`.
pub struct CliqueLister {
    h: usize,
    out: OutCsr,
    bitset: bool,
}

impl CliqueLister {
    /// Builds the shared context for h-cliques of `g[alive]`, `h >= 2`.
    /// The bitset kernel is armed unless `DSD_NO_BITSET` is set in the
    /// environment (read once here, per lister).
    pub fn new(g: &Graph, h: usize, alive: &VertexSet) -> Self {
        Self::with_bitset(g, h, alive, std::env::var_os("DSD_NO_BITSET").is_none())
    }

    /// [`CliqueLister::new`] with the bitset kernel forced on or off,
    /// overriding the `DSD_NO_BITSET` toggle — what the differential suite
    /// uses. Emitted cliques and their order are identical either way;
    /// this is a throughput knob only.
    pub fn with_bitset(g: &Graph, h: usize, alive: &VertexSet, bitset: bool) -> Self {
        assert!(h >= 2, "CliqueLister needs h >= 2");
        CliqueLister {
            h,
            out: build_out_csr(g, alive),
            bitset,
        }
    }

    /// Emits every h-clique whose lowest-ranked member is `root` (members
    /// arrive in rank order, not id order). The sink returns `false` to
    /// abort; the call then returns `false` immediately.
    pub fn for_each_rooted_until<F: FnMut(&[VertexId]) -> bool>(
        &self,
        root: VertexId,
        scratch: &mut CliqueScratch,
        f: &mut F,
    ) -> bool {
        scratch.clique.clear();
        scratch.clique.push(root);
        let row = self.out.row(root);
        if self.bitset && self.h >= 3 && bitset_worthwhile(&self.out, row) {
            let cand_count = row.len();
            scratch.bitmap.build(&self.out, root);
            let mut cand = scratch.word_pool.pop().unwrap_or_default();
            scratch.bitmap.full_mask(&mut cand);
            rec_bitset(
                &scratch.bitmap,
                &mut scratch.clique,
                cand,
                cand_count,
                self.h,
                &mut scratch.word_pool,
                f,
            )
        } else {
            rec(
                &self.out,
                &mut scratch.clique,
                row.to_vec(),
                self.h,
                &mut scratch.pool,
                f,
            )
        }
    }
}

/// Enumerates every h-clique of `g` exactly once, invoking `f` with the
/// member list (unspecified order).
///
/// `h = 1` lists vertices, `h = 2` lists edges.
pub fn for_each_clique<F: FnMut(&[VertexId])>(g: &Graph, h: usize, f: F) {
    for_each_clique_within(g, h, &VertexSet::full(g.num_vertices()), f)
}

/// Like [`for_each_clique`] but restricted to cliques whose members are all
/// in `alive`.
pub fn for_each_clique_within<F: FnMut(&[VertexId])>(
    g: &Graph,
    h: usize,
    alive: &VertexSet,
    mut f: F,
) {
    for_each_clique_within_until(g, h, alive, |clique| {
        f(clique);
        true
    });
}

/// Abortable form of [`for_each_clique_within`]: the sink returns `false`
/// to stop the enumeration (budget-capped store builds use this). Returns
/// `false` iff the sink aborted.
pub fn for_each_clique_within_until<F: FnMut(&[VertexId]) -> bool>(
    g: &Graph,
    h: usize,
    alive: &VertexSet,
    mut f: F,
) -> bool {
    assert!(h >= 1, "clique size must be at least 1");
    if h == 1 {
        let mut buf = [0 as VertexId];
        for v in alive.iter() {
            buf[0] = v;
            if !f(&buf) {
                return false;
            }
        }
        return true;
    }
    let lister = CliqueLister::new(g, h, alive);
    let mut scratch = CliqueScratch::default();
    for v in alive.iter() {
        if !lister.for_each_rooted_until(v, &mut scratch, &mut f) {
            return false;
        }
    }
    true
}

fn rec<F: FnMut(&[VertexId]) -> bool>(
    out: &OutCsr,
    clique: &mut Vec<VertexId>,
    cand: Vec<VertexId>,
    h: usize,
    pool: &mut Vec<Vec<VertexId>>,
    f: &mut F,
) -> bool {
    if clique.len() + 1 == h {
        for &u in &cand {
            clique.push(u);
            let keep = f(clique);
            clique.pop();
            if !keep {
                return false;
            }
        }
        return true;
    }
    if clique.len() + cand.len() < h {
        return true; // not enough candidates left
    }
    for &u in cand.iter() {
        // The next member must be an out-neighbour of `u` *and* of every
        // earlier member (encoded by `cand`). Rank-increase is automatic:
        // out-lists only contain higher-rank vertices, so each clique is
        // produced exactly once, in rank order.
        let mut next = pool.pop().unwrap_or_default();
        next.clear();
        intersect_sorted(&cand, out.row(u), &mut next);
        let mut keep = true;
        if clique.len() + 1 + next.len() >= h {
            clique.push(u);
            keep = rec(out, clique, std::mem::take(&mut next), h, pool, f);
            clique.pop();
        }
        pool.push(next);
        if !keep {
            return false;
        }
    }
    true
}

/// The bitset twin of [`rec`]: `cand` is a word mask over the root's
/// universe (`cand_count` set bits), intersections are word-wise AND with
/// `count_ones` accumulating the survivor count for the same
/// not-enough-candidates prune, and leaves walk set bits by
/// `trailing_zeros` — ascending local index, i.e. ascending id, so the
/// emission sequence is bit-identical to the merge kernel's.
fn rec_bitset<F: FnMut(&[VertexId]) -> bool>(
    bm: &RootBitmap,
    clique: &mut Vec<VertexId>,
    cand: Vec<u64>,
    cand_count: usize,
    h: usize,
    pool: &mut Vec<Vec<u64>>,
    f: &mut F,
) -> bool {
    if clique.len() + 1 == h {
        for (w, &word) in cand.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let j = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                clique.push(bm.universe()[j]);
                let keep = f(clique);
                clique.pop();
                if !keep {
                    return false;
                }
            }
        }
        return true;
    }
    if clique.len() + cand_count < h {
        return true; // not enough candidates left
    }
    for (w, &word) in cand.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let j = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let mut next = pool.pop().unwrap_or_default();
            next.clear();
            next.resize(cand.len(), 0);
            let row = bm.row(j);
            let mut cnt = 0usize;
            for k in 0..cand.len() {
                let x = cand[k] & row[k];
                cnt += x.count_ones() as usize;
                next[k] = x;
            }
            let mut keep = true;
            if clique.len() + 1 + cnt >= h {
                clique.push(bm.universe()[j]);
                keep = rec_bitset(bm, clique, std::mem::take(&mut next), cnt, h, pool, f);
                clique.pop();
            }
            pool.push(next);
            if !keep {
                return false;
            }
        }
    }
    true
}

/// Intersects two id-sorted slices into `out`. Shared with the parallel
/// degree pass.
pub(crate) fn intersect_sorted(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Total number of h-cliques `μ(G, Ψ)`.
pub fn count_cliques(g: &Graph, h: usize) -> u64 {
    count_cliques_within(g, h, &VertexSet::full(g.num_vertices()))
}

/// Number of h-cliques with all members in `alive`.
pub fn count_cliques_within(g: &Graph, h: usize, alive: &VertexSet) -> u64 {
    let mut c = 0u64;
    for_each_clique_within(g, h, alive, |_| c += 1);
    c
}

/// Clique-degree `deg_G(v, Ψ)` of every vertex for the h-clique Ψ
/// (Definition 3).
pub fn clique_degrees(g: &Graph, h: usize) -> Vec<u64> {
    clique_degrees_within(g, h, &VertexSet::full(g.num_vertices()))
}

/// Clique-degrees restricted to the subgraph induced by `alive` (vertices
/// outside `alive` report 0).
pub fn clique_degrees_within(g: &Graph, h: usize, alive: &VertexSet) -> Vec<u64> {
    let mut deg = vec![0u64; g.num_vertices()];
    for_each_clique_within(g, h, alive, |clique| {
        for &v in clique {
            deg[v as usize] += 1;
        }
    });
    deg
}

/// Enumerates the h-cliques that contain `v` and whose other members are all
/// in `alive` (`v` itself need not be in `alive`; it is being removed).
///
/// `f` receives the `h - 1` *other* members. This is the decrement step of
/// Algorithm 3: removing `v` kills exactly these instances.
pub fn for_each_clique_containing<F: FnMut(&[VertexId])>(
    g: &Graph,
    h: usize,
    v: VertexId,
    alive: &VertexSet,
    mut f: F,
) {
    assert!(h >= 2, "a clique containing v needs h >= 2");
    // (h-1)-cliques inside G[N(v) ∩ alive].
    let nbrs: Vec<VertexId> = g
        .neighbors(v)
        .iter()
        .copied()
        .filter(|&u| alive.contains(u))
        .collect();
    if nbrs.len() + 1 < h {
        return;
    }
    if h == 2 {
        for &u in &nbrs {
            f(&[u]);
        }
        return;
    }
    let sub = dsd_graph::InducedSubgraph::new(g, &nbrs);
    let mut mapped = vec![0 as VertexId; h - 1];
    for_each_clique(&sub.graph, h - 1, |clique| {
        for (slot, &u) in mapped.iter_mut().zip(clique) {
            *slot = sub.to_parent(u);
        }
        f(&mapped);
    });
}

/// Enumerates the h-cliques that contain the edge `{u, v}` of `g` and
/// whose *other* members are all in `alive`, handing `f` those `h - 2`
/// other members. This is the append step of incremental store repair:
/// the h-cliques an edge insertion `{u, v}` creates are exactly
/// `{u, v} ∪ C` for the (h−2)-cliques `C` of `G[N(u) ∩ N(v) ∩ alive]`,
/// each listed exactly once.
pub fn for_each_clique_containing_edge<F: FnMut(&[VertexId])>(
    g: &Graph,
    h: usize,
    u: VertexId,
    v: VertexId,
    alive: &VertexSet,
    mut f: F,
) {
    assert!(h >= 2, "a clique containing an edge needs h >= 2");
    if h == 2 {
        // The edge itself is the clique; no other members.
        f(&[]);
        return;
    }
    let mut common: Vec<VertexId> = Vec::new();
    intersect_sorted(g.neighbors(u), g.neighbors(v), &mut common);
    common.retain(|&w| alive.contains(w));
    if common.len() + 2 < h {
        return;
    }
    if h == 3 {
        for &w in &common {
            f(&[w]);
        }
        return;
    }
    let sub = dsd_graph::InducedSubgraph::new(g, &common);
    let mut mapped = vec![0 as VertexId; h - 2];
    for_each_clique(&sub.graph, h - 2, |clique| {
        for (slot, &w) in mapped.iter_mut().zip(clique) {
            *slot = sub.to_parent(w);
        }
        f(&mapped);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::GraphBuilder;

    fn k(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Brute-force clique counter over all h-subsets (small graphs only).
    fn brute_count(g: &Graph, h: usize) -> u64 {
        let n = g.num_vertices();
        let mut count = 0u64;
        let mut subset: Vec<usize> = (0..h).collect();
        if h > n {
            return 0;
        }
        loop {
            let ok = subset.iter().enumerate().all(|(i, &u)| {
                subset[i + 1..]
                    .iter()
                    .all(|&v| g.has_edge(u as VertexId, v as VertexId))
            });
            if ok {
                count += 1;
            }
            // next combination
            let mut i = h;
            loop {
                if i == 0 {
                    return count;
                }
                i -= 1;
                if subset[i] != i + n - h {
                    break;
                }
            }
            subset[i] += 1;
            for j in i + 1..h {
                subset[j] = subset[j - 1] + 1;
            }
        }
    }

    #[test]
    fn counts_on_complete_graphs() {
        let g = k(6);
        for h in 1..=6 {
            let expect = crate::binomial(6, h as u64);
            assert_eq!(count_cliques(&g, h), expect, "h = {h}");
        }
    }

    #[test]
    fn paper_figure_2a_triangles() {
        // Figure 2(a): A-B, B-C, B-D, C-D; one triangle {B, C, D}.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_cliques(&g, 3), 1);
        let deg = clique_degrees(&g, 3);
        assert_eq!(deg, vec![0, 1, 1, 1]);
    }

    #[test]
    fn paper_figure_1a_s2_triangle_degrees() {
        // S2 from Figure 1(a): two triangles sharing an edge (A-C):
        // deg(A)=2, deg(B)=1, deg(C)=2 per the running example.
        // Vertices: A=0, B=1, C=2, D=3; triangles {A,B,C} and {A,C,D}.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]);
        let deg = clique_degrees(&g, 3);
        assert_eq!(deg[0], 2);
        assert_eq!(deg[1], 1);
        assert_eq!(deg[2], 2);
        assert_eq!(deg[3], 1);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let n = 8 + (trial % 4);
            let mut b = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if next() % 10 < 45 / 10 {
                        b.add_edge(u, v);
                    }
                }
            }
            let g = b.build();
            for h in 2..=5 {
                assert_eq!(
                    count_cliques(&g, h),
                    brute_count(&g, h),
                    "trial {trial} h {h}"
                );
            }
        }
    }

    #[test]
    fn alive_mask_restricts() {
        let g = k(5);
        let mut alive = VertexSet::full(5);
        alive.remove(0);
        assert_eq!(count_cliques_within(&g, 3, &alive), crate::binomial(4, 3));
        let deg = clique_degrees_within(&g, 3, &alive);
        assert_eq!(deg[0], 0);
        assert_eq!(deg[1], crate::binomial(3, 2));
    }

    #[test]
    fn cliques_containing_vertex() {
        let g = k(5);
        let alive = VertexSet::full(5);
        let mut count = 0;
        for_each_clique_containing(&g, 3, 0, &alive, |others| {
            assert_eq!(others.len(), 2);
            assert!(!others.contains(&0));
            count += 1;
        });
        assert_eq!(count, crate::binomial(4, 2));
    }

    #[test]
    fn containing_respects_alive_mask() {
        let g = k(5);
        let mut alive = VertexSet::full(5);
        alive.remove(1);
        let mut count = 0;
        for_each_clique_containing(&g, 3, 0, &alive, |_| count += 1);
        assert_eq!(count, crate::binomial(3, 2));
    }

    #[test]
    fn per_vertex_degree_sums_to_h_times_count() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (4, 6),
                (5, 6),
                (3, 6),
            ],
        );
        for h in 2..=4 {
            let deg = clique_degrees(&g, h);
            let total: u64 = deg.iter().sum();
            assert_eq!(total, h as u64 * count_cliques(&g, h));
        }
    }

    #[test]
    fn edge_case_h_larger_than_graph() {
        let g = k(3);
        assert_eq!(count_cliques(&g, 4), 0);
        assert_eq!(count_cliques(&g, 10), 0);
    }

    #[test]
    fn bitset_kernel_matches_merge_kernel_exactly() {
        // Dense enough that high-degree roots cross the bitset threshold.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 160usize;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if next() % 100 < 55 {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let alive = VertexSet::full(n);
        for h in 3..=4 {
            let merge = CliqueLister::with_bitset(&g, h, &alive, false);
            let bits = CliqueLister::with_bitset(&g, h, &alive, true);
            assert!(
                alive
                    .iter()
                    .any(|v| bitset_worthwhile(&bits.out, bits.out.row(v))),
                "test graph too sparse to exercise the bitset kernel"
            );
            let mut sm = CliqueScratch::default();
            let mut sb = CliqueScratch::default();
            let mut seq_m: Vec<Vec<VertexId>> = Vec::new();
            let mut seq_b: Vec<Vec<VertexId>> = Vec::new();
            for v in alive.iter() {
                merge.for_each_rooted_until(v, &mut sm, &mut |c: &[VertexId]| {
                    seq_m.push(c.to_vec());
                    true
                });
                bits.for_each_rooted_until(v, &mut sb, &mut |c: &[VertexId]| {
                    seq_b.push(c.to_vec());
                    true
                });
            }
            assert!(!seq_m.is_empty(), "h = {h}");
            assert_eq!(seq_m, seq_b, "emission sequence differs at h = {h}");

            // Abort semantics match too: stop after 500 cliques.
            let cap = 500.min(seq_m.len());
            let mut got = 0usize;
            for v in alive.iter() {
                if !bits.for_each_rooted_until(v, &mut sb, &mut |_: &[VertexId]| {
                    got += 1;
                    got < cap
                }) {
                    break;
                }
            }
            assert_eq!(got, cap, "abort after {cap} cliques, h = {h}");
        }
    }

    #[test]
    fn cliques_containing_edge_match_brute_force() {
        let g = k(5);
        let alive = VertexSet::full(5);
        for h in 2..=5 {
            let mut found: Vec<Vec<VertexId>> = Vec::new();
            for_each_clique_containing_edge(&g, h, 0, 1, &alive, |others| {
                let mut c = others.to_vec();
                c.extend([0, 1]);
                c.sort_unstable();
                found.push(c);
            });
            // K5: cliques through a fixed edge choose h-2 of the other 3.
            let choose = [1u64, 3, 3, 1][h - 2];
            assert_eq!(found.len() as u64, choose, "h = {h}");
            found.sort();
            found.dedup();
            assert_eq!(found.len() as u64, choose, "each listed once, h = {h}");
        }
        // The alive mask restricts the *other* members only.
        let mut alive = VertexSet::full(5);
        alive.remove(2);
        let mut n = 0;
        for_each_clique_containing_edge(&g, 3, 0, 1, &alive, |_| n += 1);
        assert_eq!(n, 2, "triangles 01x for x in {{3, 4}}");
        let mut masked_endpoint = 0;
        alive.remove(0);
        for_each_clique_containing_edge(&g, 3, 0, 1, &alive, |_| masked_endpoint += 1);
        assert_eq!(masked_endpoint, 2, "endpoints are exempt from the mask");
    }
}
