//! Backtracking enumeration of non-induced pattern instances.
//!
//! Per the paper's Definition 8 and the automorphism remark below it, a
//! *pattern instance* is a subgraph `S ⊆ G` isomorphic to Ψ, where
//! instances are identified by their **edge set** (automorphic re-mappings
//! of the same subgraph are one instance). Consequently:
//!
//! * counts are `#injective embeddings / |Aut(Ψ)|`;
//! * explicit instance materialization dedups embeddings by the canonical
//!   (sorted) image of the pattern's edge set.
//!
//! Enumeration shards cleanly over the first search position: restricting
//! the position-0 candidates to a subset of vertices covers exactly the
//! embeddings whose pivot image lands in that subset, and
//! [`for_each_owned_instance_until`] turns that into a disjoint *instance*
//! partition via canonical-root ownership — a shard emits an instance only
//! when its pivot image is the instance's minimum vertex over the pivot's
//! automorphism orbit, so automorphic embeddings discovered by different
//! shards dedup with zero cross-shard communication. (The historical
//! single-threaded-backtracking caveat is gone: the store's pattern build
//! fans this out across workers exactly like the clique build.)

use std::collections::HashSet;

use dsd_graph::{Graph, VertexId, VertexSet};

use crate::pattern::{consistent, Pattern};

/// A concrete pattern instance in a host graph.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PatternInstance {
    /// Sorted member vertices.
    pub vertices: Vec<VertexId>,
    /// Sorted canonical edge list (`u < v`) of the instance.
    pub edges: Vec<(VertexId, VertexId)>,
}

/// A group of pattern instances sharing the same vertex set — the node unit
/// of the `construct+` flow network (Algorithm 7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceGroup {
    /// Sorted member vertices shared by all instances of the group.
    pub vertices: Vec<VertexId>,
    /// Number of instances `|g|` in the group.
    pub count: u64,
}

/// Enumerates injective embeddings of `p` into `g[alive]`.
///
/// `f` receives the image indexed by **pattern vertex id** (not search
/// order) and returns `true` to continue or `false` to abort the whole
/// enumeration. If `anchor` is `Some((pv, v))`, pattern vertex `pv` is
/// pinned to graph vertex `v`, and `v` is treated as alive regardless of
/// the mask. If `first` is `Some(list)`, the position-0 candidates are
/// restricted to `list` instead of all of `g.vertices()` — the shard
/// boundary of the parallel pattern build.
fn for_each_embedding_until<F: FnMut(&[VertexId]) -> bool>(
    g: &Graph,
    p: &Pattern,
    alive: &VertexSet,
    anchor: Option<(usize, VertexId)>,
    first: Option<&[VertexId]>,
    f: &mut F,
) {
    let order = p.search_order();
    let k = p.vertex_count();
    let mut images = vec![0 as VertexId; k]; // by search position
    let mut by_pattern = vec![0 as VertexId; k]; // by pattern vertex id
    let mut used: HashSet<VertexId> = HashSet::with_capacity(k);

    let is_alive =
        |u: VertexId| -> bool { alive.contains(u) || anchor.map(|(_, v)| v == u).unwrap_or(false) };

    // Candidate source for a position: any earlier position whose pattern
    // vertex is adjacent; its image's neighbourhood bounds the search.
    // Returns false to propagate an abort.
    #[allow(clippy::too_many_arguments)]
    fn rec<F: FnMut(&[VertexId]) -> bool>(
        g: &Graph,
        p: &Pattern,
        order: &[usize],
        pos: usize,
        images: &mut [VertexId],
        by_pattern: &mut [VertexId],
        used: &mut HashSet<VertexId>,
        anchor: Option<(usize, VertexId)>,
        first: Option<&[VertexId]>,
        is_alive: &dyn Fn(VertexId) -> bool,
        f: &mut F,
    ) -> bool {
        if pos == order.len() {
            return f(by_pattern);
        }
        let pv = order[pos];
        let try_candidate = |cand: VertexId,
                             images: &mut [VertexId],
                             by_pattern: &mut [VertexId],
                             used: &mut HashSet<VertexId>,
                             f: &mut F|
         -> bool {
            if used.contains(&cand) || !is_alive(cand) {
                return true;
            }
            if !consistent(p, order, images, pos, cand, |a, b| g.has_edge(a, b)) {
                return true;
            }
            images[pos] = cand;
            by_pattern[pv] = cand;
            used.insert(cand);
            let keep = rec(
                g,
                p,
                order,
                pos + 1,
                images,
                by_pattern,
                used,
                anchor,
                first,
                is_alive,
                f,
            );
            used.remove(&cand);
            keep
        };
        if let Some((apv, av)) = anchor {
            if apv == pv {
                return try_candidate(av, images, by_pattern, used, f);
            }
        }
        if pos == 0 {
            match first {
                Some(list) => {
                    for &cand in list {
                        if !try_candidate(cand, images, by_pattern, used, f) {
                            return false;
                        }
                    }
                }
                None => {
                    for cand in g.vertices() {
                        if !try_candidate(cand, images, by_pattern, used, f) {
                            return false;
                        }
                    }
                }
            }
        } else {
            // Anchor on the earlier neighbour with the smallest image degree.
            let src = (0..pos)
                .filter(|&q| p.has_edge(pv, order[q]))
                .min_by_key(|&q| g.degree(images[q]))
                .expect("search order keeps patterns connected");
            let around = images[src];
            for &cand in g.neighbors(around) {
                if !try_candidate(cand, images, by_pattern, used, f) {
                    return false;
                }
            }
        }
        true
    }

    rec(
        g,
        p,
        &order,
        0,
        &mut images,
        &mut by_pattern,
        &mut used,
        anchor,
        first,
        &is_alive,
        f,
    );
}

/// Non-aborting wrapper over [`for_each_embedding_until`].
fn for_each_embedding<F: FnMut(&[VertexId])>(
    g: &Graph,
    p: &Pattern,
    alive: &VertexSet,
    anchor: Option<(usize, VertexId)>,
    f: &mut F,
) {
    for_each_embedding_until(g, p, alive, anchor, None, &mut |image| {
        f(image);
        true
    });
}

/// Number of pattern instances `μ(G[alive], Ψ)` (Definition 10's numerator).
pub fn count_instances(g: &Graph, p: &Pattern, alive: &VertexSet) -> u64 {
    let mut embeddings = 0u64;
    for_each_embedding(g, p, alive, None, &mut |_| embeddings += 1);
    let aut = p.automorphism_count();
    debug_assert_eq!(
        embeddings % aut,
        0,
        "embedding count not divisible by |Aut|"
    );
    embeddings / aut
}

/// Like [`count_instances`] but gives up once more than `cap` instances
/// have been seen, returning `None`. Benchmark harnesses use this to skip
/// pattern/graph combinations whose instance sets would not fit in memory
/// (the analogue of the paper's multi-day timeout bars).
pub fn count_instances_capped(g: &Graph, p: &Pattern, alive: &VertexSet, cap: u64) -> Option<u64> {
    let aut = p.automorphism_count();
    let cap_embeddings = cap.saturating_mul(aut);
    let mut embeddings = 0u64;
    let mut over = false;
    for_each_embedding_until(g, p, alive, None, None, &mut |_| {
        embeddings += 1;
        if embeddings > cap_embeddings {
            over = true;
            false
        } else {
            true
        }
    });
    if over {
        None
    } else {
        Some(embeddings / aut)
    }
}

/// Pattern-degree `deg(v, Ψ)` of every vertex of `g[alive]` (Definition 9).
pub fn pattern_degrees(g: &Graph, p: &Pattern, alive: &VertexSet) -> Vec<u64> {
    let mut emb_deg = vec![0u64; g.num_vertices()];
    for_each_embedding(g, p, alive, None, &mut |image| {
        for &v in image {
            emb_deg[v as usize] += 1;
        }
    });
    let aut = p.automorphism_count();
    for d in &mut emb_deg {
        debug_assert_eq!(*d % aut, 0);
        *d /= aut;
    }
    emb_deg
}

fn canonical_instance(p: &Pattern, image: &[VertexId]) -> PatternInstance {
    let mut vertices: Vec<VertexId> = image.to_vec();
    vertices.sort_unstable();
    let mut edges: Vec<(VertexId, VertexId)> = p
        .edges()
        .iter()
        .map(|&(a, b)| {
            let (u, v) = (image[a as usize], image[b as usize]);
            (u.min(v), u.max(v))
        })
        .collect();
    edges.sort_unstable();
    PatternInstance { vertices, edges }
}

/// Visits every **distinct** pattern instance of `g[alive]` exactly once
/// (instances are identified by their canonical edge set, per Definition
/// 8), handing the sink the id-sorted member list. The sink returns
/// `false` to abort; the call then returns `false`.
///
/// This is the emission API the columnar instance store builds on: no
/// intermediate `Vec<Vec<VertexId>>`, and the only transient state is the
/// edge-set hash used for automorphism dedup.
pub fn for_each_instance_until<F: FnMut(&[VertexId]) -> bool>(
    g: &Graph,
    p: &Pattern,
    alive: &VertexSet,
    f: &mut F,
) -> bool {
    let mut seen: HashSet<Vec<(VertexId, VertexId)>> = HashSet::new();
    let mut members: Vec<VertexId> = Vec::with_capacity(p.vertex_count());
    let mut aborted = false;
    for_each_embedding_until(g, p, alive, None, None, &mut |image| {
        let mut edges: Vec<(VertexId, VertexId)> = p
            .edges()
            .iter()
            .map(|&(a, b)| {
                let (u, v) = (image[a as usize], image[b as usize]);
                (u.min(v), u.max(v))
            })
            .collect();
        edges.sort_unstable();
        if seen.insert(edges) {
            members.clear();
            members.extend_from_slice(image);
            members.sort_unstable();
            if !f(&members) {
                aborted = true;
                return false;
            }
        }
        true
    });
    !aborted
}

/// One shard of a parallel distinct-instance enumeration: visits exactly
/// the instances *owned* by the first-position candidate set `first`,
/// handing the sink id-sorted member lists. The sink returns `false` to
/// abort; the call then returns `false`.
///
/// Ownership is canonical-root: the pivot (first search position) of an
/// instance's embeddings ranges over the image of the pivot's automorphism
/// orbit — an embedding-independent vertex set — and the shard whose
/// `first` contains the *minimum* of that set owns the instance. Shards
/// over disjoint `first` sets therefore emit disjoint instance sets with
/// no cross-shard dedup, and a partition of the alive vertices covers
/// every instance exactly once. Within a shard, embeddings that fix the
/// pivot (its stabilizer) still collide, so the canonical edge-set dedup
/// stays, scoped shard-locally.
pub fn for_each_owned_instance_until<F: FnMut(&[VertexId]) -> bool>(
    g: &Graph,
    p: &Pattern,
    alive: &VertexSet,
    first: &[VertexId],
    f: &mut F,
) -> bool {
    let order = p.search_order();
    let pivot = order[0];
    let orbit = p.orbit(pivot);
    let mut seen: HashSet<Vec<(VertexId, VertexId)>> = HashSet::new();
    let mut members: Vec<VertexId> = Vec::with_capacity(p.vertex_count());
    let mut aborted = false;
    for_each_embedding_until(g, p, alive, None, Some(first), &mut |image| {
        let canon = orbit
            .iter()
            .map(|&q| image[q])
            .min()
            .expect("orbit contains the pivot");
        if image[pivot] != canon {
            return true; // another first-candidate owns this instance
        }
        let mut edges: Vec<(VertexId, VertexId)> = p
            .edges()
            .iter()
            .map(|&(a, b)| {
                let (u, v) = (image[a as usize], image[b as usize]);
                (u.min(v), u.max(v))
            })
            .collect();
        edges.sort_unstable();
        if seen.insert(edges) {
            members.clear();
            members.extend_from_slice(image);
            members.sort_unstable();
            if !f(&members) {
                aborted = true;
                return false;
            }
        }
        true
    });
    !aborted
}

/// Materializes the distinct pattern instances of `g[alive]`.
///
/// Intended for the (small) located cores that exact PDS algorithms build
/// flow networks over — instances are deduplicated via hashing.
pub fn instances(g: &Graph, p: &Pattern, alive: &VertexSet) -> Vec<PatternInstance> {
    let mut seen: HashSet<PatternInstance> = HashSet::new();
    for_each_embedding(g, p, alive, None, &mut |image| {
        seen.insert(canonical_instance(p, image));
    });
    let mut out: Vec<PatternInstance> = seen.into_iter().collect();
    out.sort_unstable_by(|a, b| a.edges.cmp(&b.edges));
    out
}

/// Distinct instances containing `v` whose other members are all alive
/// (`v` itself may already be dead — this is the decrement step of pattern
/// core decomposition).
pub fn instances_containing(
    g: &Graph,
    p: &Pattern,
    v: VertexId,
    alive: &VertexSet,
) -> Vec<PatternInstance> {
    let mut seen: HashSet<PatternInstance> = HashSet::new();
    for pv in 0..p.vertex_count() {
        for_each_embedding(g, p, alive, Some((pv, v)), &mut |image| {
            seen.insert(canonical_instance(p, image));
        });
    }
    let mut out: Vec<PatternInstance> = seen.into_iter().collect();
    out.sort_unstable_by(|a, b| a.edges.cmp(&b.edges));
    out
}

/// Groups instances by vertex set (Algorithm 7 line 2).
pub fn group_instances(instances: &[PatternInstance]) -> Vec<InstanceGroup> {
    use std::collections::HashMap;
    let mut groups: HashMap<&[VertexId], u64> = HashMap::new();
    for inst in instances {
        *groups.entry(inst.vertices.as_slice()).or_insert(0) += 1;
    }
    let mut out: Vec<InstanceGroup> = groups
        .into_iter()
        .map(|(vs, count)| InstanceGroup {
            vertices: vs.to_vec(),
            count,
        })
        .collect();
    out.sort_unstable_by(|a, b| a.vertices.cmp(&b.vertices));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::GraphBuilder;

    fn full(g: &Graph) -> VertexSet {
        VertexSet::full(g.num_vertices())
    }

    fn k(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn edge_instances_are_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        assert_eq!(count_instances(&g, &Pattern::edge(), &full(&g)), 5);
        let deg = pattern_degrees(&g, &Pattern::edge(), &full(&g));
        assert_eq!(deg, vec![3, 2, 3, 2]);
    }

    #[test]
    fn triangle_counts_match_kclist() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (2, 4),
            ],
        );
        let via_pattern = count_instances(&g, &Pattern::triangle(), &full(&g));
        let via_kclist = crate::kclist::count_cliques(&g, 3);
        assert_eq!(via_pattern, via_kclist);
        let dp = pattern_degrees(&g, &Pattern::triangle(), &full(&g));
        let dk = crate::kclist::clique_degrees(&g, 3);
        assert_eq!(dp, dk);
    }

    #[test]
    fn two_star_count_is_wedge_count() {
        // Wedges = Σ C(deg, 2).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        let expect: u64 = g
            .vertices()
            .map(|v| crate::binomial(g.degree(v) as u64, 2))
            .sum();
        assert_eq!(count_instances(&g, &Pattern::two_star(), &full(&g)), expect);
    }

    #[test]
    fn diamond_in_k4_counts_three_cycles() {
        // K4 contains 3 distinct 4-cycles (one per perfect matching pair).
        let g = k(4);
        assert_eq!(count_instances(&g, &Pattern::diamond(), &full(&g)), 3);
        // Every vertex lies on all 3.
        assert_eq!(
            pattern_degrees(&g, &Pattern::diamond(), &full(&g)),
            vec![3, 3, 3, 3]
        );
    }

    #[test]
    fn paper_figure_6a_diamond_instances() {
        // Figure 6(a)-style fixture: the text tells us the example graph
        // has 4 diamond instances grouped into 2 groups, g1 = {A,B,C,D}
        // (1 instance) and g2 = {A,D,E,F} (3 instances). We realize exactly
        // that: K4 on {A,D,E,F} (3 four-cycles) plus path B-C hung between
        // A and D (one four-cycle A-B-C-D), plus a tail F-G-H.
        let (a, b, c, d, e, f, g_, h) = (0u32, 1, 2, 3, 4, 5, 6, 7);
        let edges = [
            (a, b),
            (b, c),
            (c, d),
            (a, d),
            (a, e),
            (a, f),
            (d, e),
            (d, f),
            (e, f),
            (f, g_),
            (g_, h),
        ];
        let g = Graph::from_edges(8, &edges);
        let p = Pattern::diamond();
        let inst = instances(&g, &p, &full(&g));
        assert_eq!(inst.len(), 4);
        let groups = group_instances(&inst);
        assert_eq!(groups.len(), 2);
        let g1 = groups
            .iter()
            .find(|gr| gr.vertices == vec![a, b, c, d])
            .unwrap();
        let g2 = groups
            .iter()
            .find(|gr| gr.vertices == vec![a, d, e, f])
            .unwrap();
        assert_eq!(g1.count, 1);
        assert_eq!(g2.count, 3);
    }

    #[test]
    fn c3_star_count_in_paw_itself() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]);
        assert_eq!(count_instances(&g, &Pattern::c3_star(), &full(&g)), 1);
    }

    #[test]
    fn two_triangle_in_k4() {
        // K4 has C(4,2) = 6 edge choices for the shared edge... but each
        // K4-e subgraph is determined by the *missing* pair: the shared
        // edge of the two triangles connects the degree-3 vertices. For
        // vertex set = all of K4, pick the 2 degree-2 vertices: C(4,2) = 6
        // edge-subsets isomorphic to K4-e.
        let g = k(4);
        assert_eq!(count_instances(&g, &Pattern::two_triangle(), &full(&g)), 6);
    }

    #[test]
    fn instances_containing_anchors() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let p = Pattern::triangle();
        let alive = full(&g);
        let with0 = instances_containing(&g, &p, 0, &alive);
        assert_eq!(with0.len(), 1);
        assert_eq!(with0[0].vertices, vec![0, 1, 2]);
        let with4 = instances_containing(&g, &p, 4, &alive);
        assert!(with4.is_empty());
    }

    #[test]
    fn instances_containing_dead_vertex_still_counts_it() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut alive = full(&g);
        alive.remove(0);
        let p = Pattern::triangle();
        let got = instances_containing(&g, &p, 0, &alive);
        assert_eq!(got.len(), 1, "v itself is exempt from the alive mask");
        // But other dead vertices are not.
        alive.remove(1);
        assert!(instances_containing(&g, &p, 0, &alive).is_empty());
    }

    #[test]
    fn alive_mask_restricts_counts() {
        let g = k(5);
        let mut alive = full(&g);
        alive.remove(4);
        assert_eq!(count_instances(&g, &Pattern::triangle(), &alive), 4);
    }

    #[test]
    fn degrees_sum_to_size_times_count() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (4, 6),
            ],
        );
        for p in Pattern::figure7() {
            let deg = pattern_degrees(&g, &p, &full(&g));
            let total: u64 = deg.iter().sum();
            assert_eq!(
                total,
                p.vertex_count() as u64 * count_instances(&g, &p, &full(&g)),
                "pattern {}",
                p.name()
            );
        }
    }

    #[test]
    fn capped_counting_matches_and_caps() {
        let g = k(6);
        let p = Pattern::triangle();
        let exact = count_instances(&g, &p, &full(&g));
        assert_eq!(count_instances_capped(&g, &p, &full(&g), 1000), Some(exact));
        assert_eq!(
            count_instances_capped(&g, &p, &full(&g), exact),
            Some(exact)
        );
        assert_eq!(count_instances_capped(&g, &p, &full(&g), exact - 1), None);
    }

    #[test]
    fn owned_shards_partition_instances() {
        // Random-ish graph small enough for every figure-7 pattern.
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 16usize;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if next() % 100 < 35 {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let alive = full(&g);
        for p in Pattern::figure7() {
            let mut serial: Vec<Vec<VertexId>> = Vec::new();
            for_each_instance_until(&g, &p, &alive, &mut |m| {
                serial.push(m.to_vec());
                true
            });
            serial.sort();
            let roots: Vec<VertexId> = alive.iter().collect();
            for shards in [1usize, 2, 3, 5] {
                let mut all: Vec<Vec<VertexId>> = Vec::new();
                for t in 0..shards {
                    let firsts: Vec<VertexId> =
                        roots.iter().copied().skip(t).step_by(shards).collect();
                    for_each_owned_instance_until(&g, &p, &alive, &firsts, &mut |m| {
                        all.push(m.to_vec());
                        true
                    });
                }
                all.sort();
                // Multiset equality: groups with the same vertex set keep
                // their multiplicity, so no dedup here.
                assert_eq!(all, serial, "{} with {shards} shards", p.name());
            }
        }
    }

    #[test]
    fn owned_enumeration_respects_alive_mask_and_abort() {
        let g = k(6);
        let p = Pattern::triangle();
        let mut alive = full(&g);
        alive.remove(5);
        let roots: Vec<VertexId> = alive.iter().collect();
        let mut count = 0u64;
        for t in 0..2 {
            let firsts: Vec<VertexId> = roots.iter().copied().skip(t).step_by(2).collect();
            for_each_owned_instance_until(&g, &p, &alive, &firsts, &mut |_| {
                count += 1;
                true
            });
        }
        assert_eq!(count, crate::binomial(5, 3));
        // Abort stops the shard and reports it.
        let mut seen = 0;
        let done = for_each_owned_instance_until(&g, &p, &alive, &roots, &mut |_| {
            seen += 1;
            seen < 3
        });
        assert!(!done);
        assert_eq!(seen, 3);
    }

    #[test]
    fn no_instances_of_larger_pattern_in_small_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(count_instances(&g, &Pattern::basket(), &full(&g)), 0);
        assert!(instances(&g, &Pattern::basket(), &full(&g)).is_empty());
    }
}
