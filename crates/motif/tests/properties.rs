//! Property-style tests of the motif substrate: kClist vs generic pattern
//! enumeration, automorphism-correct dedup, specialized degree paths, and
//! the parallel degree pass. Driven by a deterministic xorshift seed loop
//! (no crates.io access in the container).

use dsd_graph::testing::XorShift;
use dsd_graph::{Graph, VertexSet};
use dsd_motif::{
    clique_degrees, clique_degrees_parallel, count_cliques, instances, pattern_degrees,
    pattern_enum, special, Pattern,
};

fn full(g: &Graph) -> VertexSet {
    VertexSet::full(g.num_vertices())
}

/// Cliques counted two ways agree: kClist vs generic enumeration.
#[test]
fn kclist_equals_pattern_enumeration() {
    let mut rng = XorShift::new(0xC115);
    for _ in 0..64 {
        let g = rng.random_graph(3, 10, 40);
        for h in 2..=4usize {
            let via_kclist = count_cliques(&g, h);
            let via_pattern = pattern_enum::count_instances(&g, &Pattern::clique(h), &full(&g));
            assert_eq!(via_kclist, via_pattern, "h = {h}");
        }
    }
}

/// Instance materialization dedups to exactly the counted number.
#[test]
fn instances_len_equals_count() {
    let mut rng = XorShift::new(0x1247);
    for _ in 0..64 {
        let g = rng.random_graph(3, 9, 40);
        for p in [
            Pattern::triangle(),
            Pattern::two_star(),
            Pattern::diamond(),
            Pattern::c3_star(),
            Pattern::two_triangle(),
        ] {
            let count = pattern_enum::count_instances(&g, &p, &full(&g));
            let materialized = instances(&g, &p, &full(&g));
            assert_eq!(materialized.len() as u64, count, "{}", p.name());
            // All instances have distinct edge sets.
            for w in materialized.windows(2) {
                assert!(w[0].edges != w[1].edges);
            }
        }
    }
}

/// Degrees sum to |VΨ| × #instances for every Figure-7 pattern.
#[test]
fn degree_sums() {
    let mut rng = XorShift::new(0xDE65);
    for _ in 0..64 {
        let g = rng.random_graph(3, 9, 40);
        for p in Pattern::figure7() {
            let deg = pattern_degrees(&g, &p, &full(&g));
            let total: u64 = deg.iter().sum();
            let count = pattern_enum::count_instances(&g, &p, &full(&g));
            assert_eq!(total, p.vertex_count() as u64 * count, "{}", p.name());
        }
    }
}

/// The specialized star and diamond degree formulas equal generic
/// enumeration on arbitrary graphs and masks.
#[test]
fn specialized_degrees_match() {
    let mut rng = XorShift::new(0x57A6);
    for _ in 0..64 {
        let g = rng.random_graph(3, 9, 40);
        let kill = (rng.next() % 3) as u32;
        let mut alive = full(&g);
        if (kill as usize) < g.num_vertices() {
            alive.remove(kill);
        }
        for x in 2..=3usize {
            assert_eq!(
                special::star_degrees(&g, x, &alive),
                pattern_degrees(&g, &Pattern::star(x), &alive),
                "star x = {x}"
            );
        }
        assert_eq!(
            special::diamond_degrees(&g, &alive),
            pattern_degrees(&g, &Pattern::diamond(), &alive)
        );
    }
}

/// Parallel clique degrees equal the sequential pass.
#[test]
fn parallel_degrees_match() {
    let mut rng = XorShift::new(0x9A51);
    for _ in 0..64 {
        let g = rng.random_graph(3, 10, 40);
        for h in 2..=4usize {
            assert_eq!(
                clique_degrees_parallel(&g, h, 3),
                clique_degrees(&g, h),
                "h = {h}"
            );
        }
    }
}

/// Capped counting agrees with exact counting when under the cap.
#[test]
fn capped_counting_agrees() {
    let mut rng = XorShift::new(0xCA99);
    for _ in 0..64 {
        let g = rng.random_graph(3, 9, 40);
        let p = Pattern::triangle();
        let exact = pattern_enum::count_instances(&g, &p, &full(&g));
        assert_eq!(
            pattern_enum::count_instances_capped(&g, &p, &full(&g), u64::MAX),
            Some(exact)
        );
    }
}
