//! Property-based tests of the motif substrate: kClist vs generic pattern
//! enumeration, automorphism-correct dedup, specialized degree paths, and
//! the parallel degree pass.

use dsd_motif::{
    clique_degrees, clique_degrees_parallel, count_cliques, instances, pattern_degrees,
    pattern_enum, special, Pattern,
};
use dsd_graph::{Graph, GraphBuilder, VertexSet};
use proptest::prelude::*;

fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.4), max_edges).prop_map(
            move |bits| {
                let mut b = GraphBuilder::new(n);
                let mut idx = 0;
                for u in 0..n as u32 {
                    for v in (u + 1)..n as u32 {
                        if bits[idx] {
                            b.add_edge(u, v);
                        }
                        idx += 1;
                    }
                }
                b.build()
            },
        )
    })
}

fn full(g: &Graph) -> VertexSet {
    VertexSet::full(g.num_vertices())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cliques counted two ways agree: kClist vs generic enumeration.
    #[test]
    fn kclist_equals_pattern_enumeration(g in graph_strategy(10)) {
        for h in 2..=4usize {
            let via_kclist = count_cliques(&g, h);
            let via_pattern = pattern_enum::count_instances(&g, &Pattern::clique(h), &full(&g));
            prop_assert_eq!(via_kclist, via_pattern, "h = {}", h);
        }
    }

    /// Instance materialization dedups to exactly the counted number.
    #[test]
    fn instances_len_equals_count(g in graph_strategy(9)) {
        for p in [Pattern::triangle(), Pattern::two_star(), Pattern::diamond(),
                  Pattern::c3_star(), Pattern::two_triangle()] {
            let count = pattern_enum::count_instances(&g, &p, &full(&g));
            let materialized = instances(&g, &p, &full(&g));
            prop_assert_eq!(materialized.len() as u64, count, "{}", p.name());
            // All instances have distinct edge sets.
            for w in materialized.windows(2) {
                prop_assert!(w[0].edges != w[1].edges);
            }
        }
    }

    /// Degrees sum to |VΨ| × #instances for every Figure-7 pattern.
    #[test]
    fn degree_sums(g in graph_strategy(9)) {
        for p in Pattern::figure7() {
            let deg = pattern_degrees(&g, &p, &full(&g));
            let total: u64 = deg.iter().sum();
            let count = pattern_enum::count_instances(&g, &p, &full(&g));
            prop_assert_eq!(total, p.vertex_count() as u64 * count, "{}", p.name());
        }
    }

    /// The specialized star and diamond degree formulas equal generic
    /// enumeration on arbitrary graphs and masks.
    #[test]
    fn specialized_degrees_match(g in graph_strategy(9), kill in 0..3u32) {
        let mut alive = full(&g);
        if (kill as usize) < g.num_vertices() {
            alive.remove(kill);
        }
        for x in 2..=3usize {
            prop_assert_eq!(
                special::star_degrees(&g, x, &alive),
                pattern_degrees(&g, &Pattern::star(x), &alive),
                "star x = {}", x
            );
        }
        prop_assert_eq!(
            special::diamond_degrees(&g, &alive),
            pattern_degrees(&g, &Pattern::diamond(), &alive)
        );
    }

    /// Parallel clique degrees equal the sequential pass.
    #[test]
    fn parallel_degrees_match(g in graph_strategy(10)) {
        for h in 2..=4usize {
            prop_assert_eq!(
                clique_degrees_parallel(&g, h, 3),
                clique_degrees(&g, h),
                "h = {}", h
            );
        }
    }

    /// Capped counting agrees with exact counting when under the cap.
    #[test]
    fn capped_counting_agrees(g in graph_strategy(9)) {
        let p = Pattern::triangle();
        let exact = pattern_enum::count_instances(&g, &p, &full(&g));
        prop_assert_eq!(
            pattern_enum::count_instances_capped(&g, &p, &full(&g), u64::MAX),
            Some(exact)
        );
    }
}
