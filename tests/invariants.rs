//! Property-based invariant tests spanning the whole stack: the paper's
//! theorems must hold on arbitrary graphs.

use dsd::core::{
    core_app, core_exact, decompose, density, inc_app, nucleus_decomposition, oracle_for,
    peel_app,
};
use dsd::graph::{Graph, GraphBuilder, VertexSet};
use dsd::motif::Pattern;
use proptest::prelude::*;

fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.45), max_edges).prop_map(
            move |bits| {
                let mut b = GraphBuilder::new(n);
                let mut idx = 0;
                for u in 0..n as u32 {
                    for v in (u + 1)..n as u32 {
                        if bits[idx] {
                            b.add_edge(u, v);
                        }
                        idx += 1;
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: k/|VΨ| ≤ ρ(Rk, Ψ) ≤ kmax for every (k, Ψ)-core.
    #[test]
    fn theorem1_bounds_hold(g in graph_strategy(12)) {
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::two_star()] {
            let oracle = oracle_for(&psi);
            let dec = decompose(&g, oracle.as_ref());
            for k in 1..=dec.kmax {
                let core = dec.core_set(k);
                if core.is_empty() { continue; }
                let rho = density(oracle.as_ref(), &g, &core);
                prop_assert!(rho + 1e-9 >= k as f64 / psi.vertex_count() as f64);
                prop_assert!(rho <= dec.kmax as f64 + 1e-9);
            }
        }
    }

    /// Lemma 5: ρopt ≤ kmax.
    #[test]
    fn rho_opt_bounded_by_kmax(g in graph_strategy(10)) {
        let psi = Pattern::triangle();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        let (opt, _) = core_exact(&g, &psi);
        prop_assert!(opt.density <= dec.kmax as f64 + 1e-9);
    }

    /// Lemma 7: the CDS is inside the (⌈ρopt⌉, Ψ)-core.
    #[test]
    fn cds_is_inside_its_core(g in graph_strategy(10)) {
        let psi = Pattern::triangle();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        let (opt, _) = core_exact(&g, &psi);
        if opt.density > 0.0 {
            let k = opt.density.ceil() as u64;
            let core = dec.core_set(k);
            for &v in &opt.vertices {
                prop_assert!(core.contains(v), "CDS vertex {v} outside ({k},Ψ)-core");
            }
        }
    }

    /// Lemmas 8/10: every approximation is within 1/|VΨ| of optimal.
    #[test]
    fn approximation_guarantees(g in graph_strategy(10)) {
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::diamond()] {
            let (opt, _) = core_exact(&g, &psi);
            let floor = opt.density / psi.vertex_count() as f64 - 1e-9;
            prop_assert!(peel_app(&g, &psi).density >= floor, "PeelApp {}", psi.name());
            prop_assert!(inc_app(&g, &psi).result.density >= floor, "IncApp {}", psi.name());
            prop_assert!(core_app(&g, &psi).result.density >= floor, "CoreApp {}", psi.name());
        }
    }

    /// Cores are nested, and every member of the (k, Ψ)-core has inner
    /// degree ≥ k.
    #[test]
    fn core_structure(g in graph_strategy(12)) {
        let psi = Pattern::triangle();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        for k in 1..=dec.kmax {
            let hi = dec.core_set(k);
            let lo = dec.core_set(k - 1);
            for v in hi.iter() {
                prop_assert!(lo.contains(v), "nestedness broken at k={k}");
            }
            let deg = oracle.degrees(&g, &hi);
            for v in hi.iter() {
                prop_assert!(deg[v as usize] >= k, "degree {} < {k}", deg[v as usize]);
            }
        }
    }

    /// The AND-style nucleus decomposition converges to the same core
    /// numbers as the peel decomposition, for every clique size.
    #[test]
    fn nucleus_equals_peel_decomposition(g in graph_strategy(10)) {
        for h in 2..=4usize {
            let nuc = nucleus_decomposition(&g, h);
            let oracle = oracle_for(&Pattern::clique(h));
            let dec = decompose(&g, oracle.as_ref());
            prop_assert_eq!(&nuc.core, &dec.core, "h = {}", h);
        }
    }

    /// IncApp and CoreApp return the identical (kmax, Ψ)-core.
    #[test]
    fn inc_app_equals_core_app(g in graph_strategy(12)) {
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::two_star()] {
            let a = inc_app(&g, &psi);
            let b = core_app(&g, &psi);
            prop_assert_eq!(a.kmax, b.kmax);
            prop_assert_eq!(&a.result.vertices, &b.result.vertices);
        }
    }

    /// The peel lower bound ρ′ never exceeds ρopt, and the best residual
    /// subgraph really achieves it.
    #[test]
    fn peel_density_is_achievable_lower_bound(g in graph_strategy(10)) {
        let psi = Pattern::triangle();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        let (opt, _) = core_exact(&g, &psi);
        prop_assert!(dec.best_density <= opt.density + 1e-9);
        let set = VertexSet::from_members(g.num_vertices(), &dec.best_residual());
        let rho = density(oracle.as_ref(), &g, &set);
        prop_assert!((rho - dec.best_density).abs() < 1e-9);
    }
}
