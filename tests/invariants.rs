//! Property-style invariant tests spanning the whole stack: the paper's
//! theorems must hold on arbitrary graphs. Driven by a deterministic
//! xorshift seed loop (no crates.io access in the container).

use dsd::core::{
    core_app, core_exact, decompose, density, inc_app, nucleus_decomposition, oracle_for, peel_app,
};
use dsd::graph::testing::XorShift;
use dsd::graph::VertexSet;
use dsd::motif::Pattern;

/// Theorem 1: k/|VΨ| ≤ ρ(Rk, Ψ) ≤ kmax for every (k, Ψ)-core.
#[test]
fn theorem1_bounds_hold() {
    let mut rng = XorShift::new(0x7801);
    for _ in 0..48 {
        let g = rng.random_graph(2, 12, 45);
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::two_star()] {
            let oracle = oracle_for(&psi);
            let dec = decompose(&g, oracle.as_ref());
            for k in 1..=dec.kmax {
                let core = dec.core_set(k);
                if core.is_empty() {
                    continue;
                }
                let rho = density(oracle.as_ref(), &g, &core);
                assert!(rho + 1e-9 >= k as f64 / psi.vertex_count() as f64);
                assert!(rho <= dec.kmax as f64 + 1e-9);
            }
        }
    }
}

/// Lemma 5: ρopt ≤ kmax.
#[test]
fn rho_opt_bounded_by_kmax() {
    let mut rng = XorShift::new(0x5E11);
    for _ in 0..48 {
        let g = rng.random_graph(2, 10, 45);
        let psi = Pattern::triangle();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        let (opt, _) = core_exact(&g, &psi);
        assert!(opt.density <= dec.kmax as f64 + 1e-9);
    }
}

/// Lemma 7: the CDS is inside the (⌈ρopt⌉, Ψ)-core.
#[test]
fn cds_is_inside_its_core() {
    let mut rng = XorShift::new(0xCD51);
    for _ in 0..48 {
        let g = rng.random_graph(2, 10, 45);
        let psi = Pattern::triangle();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        let (opt, _) = core_exact(&g, &psi);
        if opt.density > 0.0 {
            let k = opt.density.ceil() as u64;
            let core = dec.core_set(k);
            for &v in &opt.vertices {
                assert!(core.contains(v), "CDS vertex {v} outside ({k},Ψ)-core");
            }
        }
    }
}

/// Lemmas 8/10: every approximation is within 1/|VΨ| of optimal.
#[test]
fn approximation_guarantees() {
    let mut rng = XorShift::new(0xA991);
    for _ in 0..48 {
        let g = rng.random_graph(2, 10, 45);
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::diamond()] {
            let (opt, _) = core_exact(&g, &psi);
            let floor = opt.density / psi.vertex_count() as f64 - 1e-9;
            assert!(
                peel_app(&g, &psi).density >= floor,
                "PeelApp {}",
                psi.name()
            );
            assert!(
                inc_app(&g, &psi).result.density >= floor,
                "IncApp {}",
                psi.name()
            );
            assert!(
                core_app(&g, &psi).result.density >= floor,
                "CoreApp {}",
                psi.name()
            );
        }
    }
}

/// Cores are nested, and every member of the (k, Ψ)-core has inner
/// degree ≥ k.
#[test]
fn core_structure() {
    let mut rng = XorShift::new(0xC02E);
    for _ in 0..48 {
        let g = rng.random_graph(2, 12, 45);
        let psi = Pattern::triangle();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        for k in 1..=dec.kmax {
            let hi = dec.core_set(k);
            let lo = dec.core_set(k - 1);
            for v in hi.iter() {
                assert!(lo.contains(v), "nestedness broken at k={k}");
            }
            let deg = oracle.degrees(&g, &hi);
            for v in hi.iter() {
                assert!(deg[v as usize] >= k, "degree {} < {k}", deg[v as usize]);
            }
        }
    }
}

/// The AND-style nucleus decomposition converges to the same core numbers
/// as the peel decomposition, for every clique size.
#[test]
fn nucleus_equals_peel_decomposition() {
    let mut rng = XorShift::new(0x91C1);
    for _ in 0..48 {
        let g = rng.random_graph(2, 10, 45);
        for h in 2..=4usize {
            let nuc = nucleus_decomposition(&g, h);
            let oracle = oracle_for(&Pattern::clique(h));
            let dec = decompose(&g, oracle.as_ref());
            assert_eq!(&nuc.core, &dec.core, "h = {h}");
        }
    }
}

/// IncApp and CoreApp return the identical (kmax, Ψ)-core.
#[test]
fn inc_app_equals_core_app() {
    let mut rng = XorShift::new(0x1CA9);
    for _ in 0..48 {
        let g = rng.random_graph(2, 12, 45);
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::two_star()] {
            let a = inc_app(&g, &psi);
            let b = core_app(&g, &psi);
            assert_eq!(a.kmax, b.kmax);
            assert_eq!(&a.result.vertices, &b.result.vertices);
        }
    }
}

/// The peel lower bound ρ′ never exceeds ρopt, and the best residual
/// subgraph really achieves it.
#[test]
fn peel_density_is_achievable_lower_bound() {
    let mut rng = XorShift::new(0x9EE1);
    for _ in 0..48 {
        let g = rng.random_graph(2, 10, 45);
        let psi = Pattern::triangle();
        let oracle = oracle_for(&psi);
        let dec = decompose(&g, oracle.as_ref());
        let (opt, _) = core_exact(&g, &psi);
        assert!(dec.best_density <= opt.density + 1e-9);
        let set = VertexSet::from_members(g.num_vertices(), &dec.best_residual());
        let rho = density(oracle.as_ref(), &g, &set);
        assert!((rho - dec.best_density).abs() < 1e-9);
    }
}
