//! Regression tests for `dsd batch`: malformed directives must not stop
//! the valid ones (report on stderr, exit 1, valid solutions still
//! printed), and `update` directives must interleave with requests.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Writes `name` under a per-test temp dir and returns its path.
fn write_file(dir: &Path, name: &str, contents: &str) -> PathBuf {
    let path = dir.join(name);
    fs::write(&path, contents).expect("write test file");
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsd-cli-batch-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_batch(request_file: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsd"))
        .arg("batch")
        .arg(request_file)
        .output()
        .expect("spawn dsd batch")
}

const TOY_EDGES: &str = "# n 6\n0 1\n1 2\n0 2\n0 3\n2 3\n3 4\n4 5\n";

/// One malformed and one valid request: exit code 1, but the valid
/// solution is still printed (the malformed one is reported on stderr).
#[test]
fn malformed_request_reports_error_but_valid_request_still_runs() {
    let dir = temp_dir("malformed");
    let edges = write_file(&dir, "toy.edges", TOY_EDGES);
    let reqs = write_file(
        &dir,
        "reqs.txt",
        &format!(
            "graph toy {}\n\
             req toy --psi no-such-pattern\n\
             req toy --psi triangle --method core-exact\n",
            edges.display()
        ),
    );
    let out = run_batch(&reqs);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    assert_eq!(
        out.status.code(),
        Some(1),
        "malformed directive must fail the run\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("density 0.500000"),
        "valid triangle CDS must still be solved and printed\nstdout:\n{stdout}"
    );
    assert!(
        stderr.contains("no-such-pattern"),
        "malformed directive must be reported on stderr\nstderr:\n{stderr}"
    );
}

/// A fully valid file exits 0, and an `update` directive between requests
/// changes later answers (epoch bump visible in the output).
#[test]
fn update_directive_interleaves_and_changes_answers() {
    let dir = temp_dir("update");
    let edges = write_file(&dir, "toy.edges", TOY_EDGES);
    let reqs = write_file(
        &dir,
        "reqs.txt",
        &format!(
            "graph toy {}\n\
             req toy --psi triangle --method core-exact\n\
             update toy +3:5 -0:1\n\
             req toy --psi triangle --method core-exact\n",
            edges.display()
        ),
    );
    let out = run_batch(&reqs);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    assert_eq!(
        out.status.code(),
        Some(0),
        "valid file must succeed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("updated toy: +1 -1"),
        "update summary expected\nstdout:\n{stdout}"
    );
    // Pre-update CDS: the 4-clique-ish core {0,1,2,3}, density 1/2 at
    // epoch 0. Post-update the second triangle {3,4,5} joins: 5 vertices
    // at density 2/5, epoch 1.
    assert!(
        stdout.contains("density 0.500000, 4 vertices [Exact] (epoch 0)"),
        "pre-update answer expected\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("density 0.400000, 5 vertices [Exact] (epoch 1)"),
        "post-update answer expected\nstdout:\n{stdout}"
    );
}

/// Re-registering a name flushes the requests queued above it: they must
/// answer against the graph that was registered when they were written.
#[test]
fn graph_reregistration_flushes_pending_requests() {
    let dir = temp_dir("reregister");
    let one_edge = write_file(&dir, "a.edges", "0 1\n");
    let triangle = write_file(&dir, "b.edges", "0 1\n1 2\n0 2\n");
    let reqs = write_file(
        &dir,
        "reqs.txt",
        &format!(
            "graph g {}\n\
             req g --psi edge --method peel\n\
             graph g {}\n\
             req g --psi edge --method peel\n",
            one_edge.display(),
            triangle.display()
        ),
    );
    let out = run_batch(&reqs);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(
        stdout.contains("#0: Densest via PeelApp: density 0.500000"),
        "request #0 must answer on the single-edge graph\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("#1: Densest via PeelApp: density 1.000000"),
        "request #1 must answer on the triangle\nstdout:\n{stdout}"
    );
}

/// An update on an unregistered graph is reported and fails the run, but
/// the other requests still execute.
#[test]
fn update_on_unknown_graph_is_nonfatal() {
    let dir = temp_dir("unknown");
    let edges = write_file(&dir, "toy.edges", TOY_EDGES);
    let reqs = write_file(
        &dir,
        "reqs.txt",
        &format!(
            "graph toy {}\n\
             update missing +0:1\n\
             req toy --psi edge --method peel\n",
            edges.display()
        ),
    );
    let out = run_batch(&reqs);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(stderr.contains("missing"), "stderr:\n{stderr}");
    assert!(
        stdout.contains("#0:"),
        "valid request must still print\nstdout:\n{stdout}"
    );
}
