//! The paper's headline qualitative claims, checked end-to-end on the
//! dataset stand-ins. These are the assertions EXPERIMENTS.md summarizes:
//! not absolute timings, but the *shapes* — who wins, what shrinks, what
//! the bounds imply.

use dsd::core::{
    core_app, core_exact, core_exact_with, decompose, densest_at_least_k, exact, inc_app,
    oracle_for, peel_app, CoreExactConfig, FlowBackend, Method,
};
use dsd::datasets::{dataset, er};
use dsd::motif::Pattern;

/// Claim (Sec. 6.1 / Fig. 9): CoreExact's flow networks are located in
/// cores and keep shrinking, ending smaller than Exact's whole-graph
/// network.
///
/// Both networks are store-built (factorised, Λ side = triangle rows)
/// rather than Algorithm 1's edge-Λ formulation, which caps the shrink
/// ratio: triangles concentrate inside the core the search locates, so
/// the Λ side shrinks less than the vertex side does. The located
/// network must still be clearly smaller, and must only shrink across
/// Pruning3 restarts.
#[test]
fn flow_networks_shrink_inside_cores() {
    let g = dataset("As-733").unwrap().generate();
    let psi = Pattern::triangle();
    let (_, core_stats) = core_exact(&g, &psi);
    let (_, exact_stats) = exact(&g, &psi, FlowBackend::Dinic);
    let full = exact_stats.network_nodes[0];
    let located = core_stats.exact.network_nodes[0];
    assert!(
        (located as f64) < 0.7 * full as f64,
        "located network {located} not clearly smaller than full network {full}"
    );
    // Monotone non-increase across iterations (rebuilds only shrink).
    for w in core_stats.exact.network_nodes.windows(2) {
        assert!(
            w[1] <= w[0],
            "network grew: {:?}",
            core_stats.exact.network_nodes
        );
    }
}

/// Claim (Fig. 8): CoreExact is faster than Exact on skewed graphs, and
/// both return identical densities. Wall-clock is noisy in debug builds,
/// so we assert the *mechanism*: the total flow-network work (Σ nodes over
/// all min-cut probes) must be far smaller for CoreExact — that product is
/// what the paper's ≥ 4.5× speedup comes from.
#[test]
fn core_exact_beats_exact_on_skewed_graphs() {
    let g = dataset("Ca-HepTh").unwrap().generate();
    let psi = Pattern::triangle();
    let (a, exact_stats) = exact(&g, &psi, FlowBackend::Dinic);
    let (b, core_stats) = core_exact(&g, &psi);
    assert!((a.density - b.density).abs() < 1e-6);
    let exact_work: usize = exact_stats.network_nodes.iter().sum();
    let core_work: usize = core_stats.exact.network_nodes.iter().sum();
    assert!(
        (core_work as f64) < 0.1 * exact_work as f64,
        "CoreExact probed {core_work} network-nodes vs Exact's {exact_work}"
    );
}

/// Claim (Table 3): the decomposition share of CoreExact's time drops as
/// the clique grows.
#[test]
fn decomposition_share_falls_with_h() {
    let g = dataset("As-733").unwrap().generate();
    let share = |h: usize| {
        let (_, stats) = core_exact(&g, &Pattern::clique(h));
        stats.decomposition_nanos as f64 / stats.total_nanos.max(1) as f64
    };
    let s2 = share(2);
    let s4 = share(4);
    assert!(
        s4 < s2 + 0.25,
        "share at h=4 ({s4:.3}) should not dwarf share at h=2 ({s2:.3})"
    );
}

/// Claim (Fig. 11): actual approximation ratios are far above 1/|VΨ| and
/// usually close to 1.
#[test]
fn actual_ratios_beat_theory() {
    let g = dataset("Netscience").unwrap().generate();
    for h in [2usize, 3, 4] {
        let psi = Pattern::clique(h);
        let (opt, _) = core_exact(&g, &psi);
        if opt.density == 0.0 {
            continue;
        }
        let approx = core_app(&g, &psi);
        let ratio = approx.result.density / opt.density;
        assert!(
            ratio > 0.8,
            "h = {h}: actual ratio {ratio:.3} not close to 1"
        );
    }
}

/// Claim (Fig. 13–14): flat ER degrees defeat core pruning — the kmax-core
/// covers most of the graph — while skewed graphs have tiny cores.
#[test]
fn er_core_is_almost_everything() {
    let flat = er::er(4_000, 0.003, 5);
    let core = inc_app(&flat, &Pattern::edge());
    let frac = core.result.len() as f64 / flat.num_vertices() as f64;
    assert!(
        frac > 0.5,
        "ER kmax-core covers only {frac:.2} of the graph"
    );

    let skewed = dataset("As-733").unwrap().generate();
    let score = inc_app(&skewed, &Pattern::edge());
    let sfrac = score.result.len() as f64 / skewed.num_vertices() as f64;
    assert!(sfrac < 0.2, "skewed kmax-core covers {sfrac:.2}");
}

/// Claim (Table 5): clique-densities of the CDS dominate the same measure
/// on the EDS, and the two subgraphs can differ.
#[test]
fn cds_densities_dominate_eds_densities() {
    let g = dataset("Yeast").unwrap().generate();
    let (eds, _) = core_exact(&g, &Pattern::edge());
    let eds_set = dsd::graph::VertexSet::from_members(g.num_vertices(), &eds.vertices);
    for h in [3usize, 4] {
        let psi = Pattern::clique(h);
        let (cds, _) = core_exact(&g, &psi);
        let oracle = oracle_for(&psi);
        let on_eds = dsd::core::density(oracle.as_ref(), &g, &eds_set);
        assert!(cds.density + 1e-9 >= on_eds, "h = {h}");
    }
}

/// Claim (Theorem 1 via stats): kmax/|VΨ| ≤ ρ(kmax-core) ≤ kmax on real
/// stand-ins, making the bounds usable for pruning.
#[test]
fn theorem1_is_tight_enough_to_prune() {
    let g = dataset("Netscience").unwrap().generate();
    let psi = Pattern::triangle();
    let oracle = oracle_for(&psi);
    let dec = decompose(&g, oracle.as_ref());
    let core = dec.max_core();
    let rho = dsd::core::density(oracle.as_ref(), &g, &core);
    assert!(rho + 1e-9 >= dec.kmax as f64 / 3.0);
    assert!(rho <= dec.kmax as f64 + 1e-9);
    // And the located core is small (the whole point of pruning).
    assert!(core.len() < g.num_vertices() / 10);
}

/// Claim (Fig. 10): disabling all prunings never changes the answer, only
/// the cost.
#[test]
fn prunings_are_semantically_transparent() {
    let g = dataset("Yeast").unwrap().generate();
    let psi = Pattern::triangle();
    let reference = core_exact(&g, &psi).0.density;
    let none = CoreExactConfig {
        pruning1: false,
        pruning2: false,
        pruning3: false,
        ..CoreExactConfig::default()
    };
    let (r, _) = core_exact_with(&g, &psi, none);
    assert!((r.density - reference).abs() < 1e-7);
}

/// Future-work extension: the at-least-k densest subgraph interpolates
/// between the unconstrained optimum and the whole graph.
#[test]
fn size_constrained_interpolates() {
    let g = dataset("Yeast").unwrap().generate();
    let psi = Pattern::edge();
    let unconstrained = peel_app(&g, &psi).density;
    let mut last = f64::INFINITY;
    for k in [2usize, 50, 200, 800, g.num_vertices()] {
        let r = densest_at_least_k(&g, &psi, k).unwrap();
        assert!(r.len() >= k);
        assert!(r.density <= unconstrained + 1e-9);
        assert!(r.density <= last + 1e-9, "density must not increase with k");
        last = r.density;
    }
}

/// The one-call API agrees with the underlying algorithms.
#[test]
fn facade_methods_are_consistent() {
    let g = dataset("Yeast").unwrap().generate();
    let psi = Pattern::triangle();
    let a = dsd::core::densest_subgraph(&g, &psi, Method::CoreExact);
    let (b, _) = core_exact(&g, &psi);
    assert_eq!(a.vertices, b.vertices);
}
