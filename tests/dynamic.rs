//! Differential harness for the dynamic-graph subsystem.
//!
//! The contract under test: a long-lived engine that absorbs edge updates
//! through `DsdEngine::apply` / `DsdService::update` (incremental k-core
//! repair, conservative Ψ-substrate invalidation, lazy CSR
//! materialization) answers **every** query bit-identically to a fresh
//! engine built from scratch over the materialized graph. The harness
//! drives seeded random update/query interleavings and cross-checks each
//! query; the companion property tests pin the incremental k-core repair
//! against the from-scratch bucket peel after every single edge update.
//!
//! Iteration counts honour the `DSD_PROP_ITERS` env knob (the nightly CI
//! job runs the suites with elevated counts); the defaults keep the
//! acceptance floor of ≥ 200 interleavings.

use std::collections::BTreeSet;

use dsd::core::{
    k_core_decomposition, repair_delete, repair_insert, DsdEngine, DsdRequest, DsdService, Method,
    Objective, Outcome, Solution,
};
use dsd::graph::{DeltaGraph, EdgeOverlay, Graph, GraphUpdate, VertexId};
use dsd::motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iteration knob: `DSD_PROP_ITERS` overrides, `default` otherwise.
fn prop_iters(default: usize) -> usize {
    std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A random base graph as (n, edge set).
fn random_base(rng: &mut StdRng) -> (usize, BTreeSet<(VertexId, VertexId)>) {
    let n = rng.gen_range(10usize..=20);
    let p = rng.gen_range(0.12f64..0.3);
    let mut edges = BTreeSet::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p) {
                edges.insert((u, v));
            }
        }
    }
    (n, edges)
}

/// Draws one random update; endpoints occasionally collide or run out of
/// range so the no-op accounting is exercised too.
fn random_update(rng: &mut StdRng, n: usize) -> GraphUpdate {
    let hi = n as u32 + 1; // one past the end → rare out-of-range no-ops
    let u = rng.gen_range(0u32..hi);
    let v = rng.gen_range(0u32..hi);
    if rng.gen_bool(0.5) {
        GraphUpdate::Insert(u, v)
    } else {
        GraphUpdate::Delete(u, v)
    }
}

/// Mirrors one update onto the reference edge set, with the same no-op
/// semantics as `EdgeOverlay::apply`. Returns whether it was effective.
fn mirror_update(
    edges: &mut BTreeSet<(VertexId, VertexId)>,
    n: usize,
    update: &GraphUpdate,
) -> bool {
    let (u, v) = update.endpoints();
    if u == v || u as usize >= n || v as usize >= n {
        return false;
    }
    let key = (u.min(v), u.max(v));
    match update {
        GraphUpdate::Insert(..) => edges.insert(key),
        GraphUpdate::Delete(..) => edges.remove(&key),
    }
}

/// A random query over the current graph: every objective, pinned methods
/// only (determinism), patterns cheap enough for hundreds of from-scratch
/// cross-checks.
fn random_request(rng: &mut StdRng, n: usize) -> DsdRequest {
    let psi = match rng.gen_range(0u32..3) {
        0 => Pattern::edge(),
        1 => Pattern::triangle(),
        _ => Pattern::two_star(),
    };
    let req = DsdRequest::new(&psi);
    match rng.gen_range(0u32..6) {
        0 => req.method(Method::CoreExact),
        1 => req.method(Method::PeelApp),
        2 => req.method(Method::IncApp),
        3 => req.objective(Objective::TopK(rng.gen_range(1usize..=3))),
        4 => req.objective(Objective::AtLeastK(rng.gen_range(1usize..=n))),
        _ => {
            let q = rng.gen_range(0u32..n as u32);
            req.objective(Objective::WithQuery(vec![q]))
        }
    }
}

/// Bit-identity between the incremental and from-scratch solutions.
fn assert_bit_identical(seed: u64, step: usize, incremental: &Solution, fresh: &Solution) {
    let ctx = || format!("seed {seed}, step {step}, {:?}", incremental.objective);
    assert_eq!(incremental.vertices, fresh.vertices, "vertices: {}", ctx());
    assert_eq!(
        incremental.density.to_bits(),
        fresh.density.to_bits(),
        "density bits: {}",
        ctx()
    );
    assert_eq!(incremental.method, fresh.method, "method: {}", ctx());
    assert_eq!(incremental.outcome, fresh.outcome, "outcome: {}", ctx());
    assert_eq!(
        incremental.guarantee,
        fresh.guarantee,
        "guarantee: {}",
        ctx()
    );
    assert_eq!(
        incremental.subgraphs.len(),
        fresh.subgraphs.len(),
        "subgraph count: {}",
        ctx()
    );
    for (a, b) in incremental.subgraphs.iter().zip(&fresh.subgraphs) {
        assert_eq!(a.vertices, b.vertices, "subgraph members: {}", ctx());
        assert_eq!(
            a.density.to_bits(),
            b.density.to_bits(),
            "subgraph density bits: {}",
            ctx()
        );
    }
}

/// One seeded interleaving: a service-registered graph absorbs update
/// batches and answers queries; every query is cross-checked bit-for-bit
/// against a fresh engine over the materialized reference graph.
fn run_interleaving(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (n, mut edges) = random_base(&mut rng);
    let edge_list: Vec<_> = edges.iter().copied().collect();
    let service = DsdService::new();
    service.register("dyn", Graph::from_edges(n, &edge_list));

    let mut expected_epoch = 0u64;
    let steps = rng.gen_range(8usize..=14);
    for step in 0..=steps {
        // Updates between queries; the final step is always a query so
        // every interleaving ends with a cross-check.
        if step < steps && rng.gen_bool(0.55) {
            let batch: Vec<GraphUpdate> = (0..rng.gen_range(1usize..=3))
                .map(|_| random_update(&mut rng, n))
                .collect();
            // Batch normalization cancels opposing updates, so the stats
            // describe the *net* edge-set change, not per-update effects.
            let before = edges.clone();
            for update in &batch {
                mirror_update(&mut edges, n, update);
            }
            let net_ins = edges.difference(&before).count();
            let net_del = before.difference(&edges).count();
            let stats = service.update("dyn", &batch).expect("registered");
            assert_eq!(
                stats.inserted, net_ins,
                "seed {seed}, step {step}: net inserts diverged from mirror"
            );
            assert_eq!(
                stats.deleted, net_del,
                "seed {seed}, step {step}: net deletes diverged from mirror"
            );
            assert_eq!(stats.ignored, batch.len() - net_ins - net_del);
            if net_ins + net_del > 0 {
                expected_epoch += 1;
            }
            assert_eq!(stats.epoch, expected_epoch, "seed {seed}, step {step}");
            continue;
        }
        let req = random_request(&mut rng, n);
        let incremental = service.solve(&req.clone().on("dyn")).expect("registered");
        assert_eq!(
            incremental.stats.epoch, expected_epoch,
            "seed {seed}, step {step}: query answered on a stale epoch"
        );
        let edge_list: Vec<_> = edges.iter().copied().collect();
        let fresh_engine = DsdEngine::new(Graph::from_edges(n, &edge_list));
        let fresh = fresh_engine.solve(&req);
        assert_bit_identical(seed, step, &incremental, &fresh);
    }
}

/// The core differential acceptance test: ≥ 200 seeded update/query
/// interleavings, incremental vs from-scratch bit-identical throughout.
#[test]
fn differential_updates_vs_fresh_engine_bit_identical() {
    let iters = prop_iters(200);
    for seed in 0..iters as u64 {
        run_interleaving(seed);
    }
}

/// Incremental k-core property: after **every** random effective edge
/// update, the repaired decomposition equals the from-scratch bucket peel
/// of the materialized graph, and no core number moves by more than 1
/// (the classic single-edge locality invariant).
#[test]
fn incremental_kcore_matches_scratch_after_every_update() {
    let iters = prop_iters(120);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0x6B_C0DE ^ seed);
        let (n, edges) = random_base(&mut rng);
        let edge_list: Vec<_> = edges.iter().copied().collect();
        let base = Graph::from_edges(n, &edge_list);
        let mut overlay = EdgeOverlay::default();
        let mut dec = k_core_decomposition(&base);
        for step in 0..30 {
            let update = random_update(&mut rng, n);
            if !overlay.apply(&base, &update) {
                continue;
            }
            let before = dec.core.clone();
            let view = DeltaGraph::new(&base, &overlay);
            let (u, v) = update.endpoints();
            match update {
                GraphUpdate::Insert(..) => repair_insert(&view, &mut dec, u, v),
                GraphUpdate::Delete(..) => repair_delete(&view, &mut dec, u, v),
            }
            let scratch = k_core_decomposition(&view.materialize());
            assert_eq!(
                dec.core, scratch.core,
                "seed {seed}, step {step}: core numbers diverged after {update:?}"
            );
            assert_eq!(
                dec.kmax, scratch.kmax,
                "seed {seed}, step {step}: kmax diverged after {update:?}"
            );
            for (w, (&new, &old)) in dec.core.iter().zip(&before).enumerate() {
                let delta = new as i64 - old as i64;
                assert!(
                    delta.abs() <= 1,
                    "seed {seed}, step {step}: |Δcore({w})| = {delta} after {update:?}"
                );
            }
        }
    }
}

/// Epoch bookkeeping across a long applied stream: snapshots taken before
/// an update keep answering on their graph version, and `SolveStats::epoch`
/// counts exactly the effective batches.
#[test]
fn epochs_count_effective_batches_only() {
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2)]);
    let engine = DsdEngine::new(g);
    assert_eq!(engine.epoch(), 0);
    // Ineffective batch: no epoch.
    engine.apply(&[GraphUpdate::Delete(3, 4)]);
    assert_eq!(engine.epoch(), 0);
    // Three effective batches.
    engine.apply(&[GraphUpdate::Insert(2, 3)]);
    engine.apply(&[GraphUpdate::Insert(3, 4)]);
    engine.apply(&[GraphUpdate::Delete(0, 1)]);
    assert_eq!(engine.epoch(), 3);
    let s = engine
        .request(&Pattern::edge())
        .method(Method::PeelApp)
        .solve();
    assert_eq!(s.stats.epoch, 3);
    assert_eq!(s.outcome, Outcome::Found);
}

/// Regression: a batch that nets to nothing (e.g. `[+{u,v}, -{u,v}]`)
/// must take the `ignored` fast path. Opposing updates cancel during
/// batch normalization — no epoch bump, no substrate invalidation, and
/// the warm Ψ-substrate answers the next query as a cache hit.
#[test]
fn net_noop_batches_take_the_ignored_fast_path() {
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
    let engine = DsdEngine::new(g);
    // Warm a triangle substrate.
    let warm = engine
        .request(&Pattern::triangle())
        .method(Method::CoreExact)
        .solve();
    assert_eq!(warm.stats.epoch, 0);

    // Insert-then-delete of an absent edge cancels to nothing.
    let stats = engine.apply(&[GraphUpdate::Insert(1, 3), GraphUpdate::Delete(1, 3)]);
    assert_eq!(stats.inserted, 0);
    assert_eq!(stats.deleted, 0);
    assert_eq!(stats.ignored, 2, "opposing updates must cancel");
    assert_eq!(stats.epoch, 0, "net-noop batch must not bump the epoch");
    assert_eq!(stats.substrates_dropped, 0);
    assert_eq!(stats.substrates_repaired, 0);

    // Delete-then-insert of a present edge cancels too.
    let stats = engine.apply(&[GraphUpdate::Delete(0, 1), GraphUpdate::Insert(0, 1)]);
    assert_eq!(stats.ignored, 2);
    assert_eq!(stats.epoch, 0);

    // The warm substrate survived: same epoch, oracle cache hit.
    let again = engine
        .request(&Pattern::triangle())
        .method(Method::CoreExact)
        .solve();
    assert_eq!(again.stats.epoch, 0);
    assert!(
        again.stats.substrate.oracle_cache_hit,
        "warm substrate must survive a net-noop batch"
    );
    assert_eq!(again.density.to_bits(), warm.density.to_bits());
}
