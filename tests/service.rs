//! Serving-layer tests: concurrent solves are bit-identical to serial,
//! racing warmers pay one substrate build, and the catalog stays
//! consistent under register/evict contention.

use std::sync::{Arc, Barrier};

use dsd::core::{DsdRequest, DsdService, Method, Objective, Parallelism, ServiceError, Solution};
use dsd::graph::Graph;
use dsd::motif::Pattern;

/// A graph with enough structure that every objective has a non-trivial
/// answer: K6 + triangle fringe + chain (the `tests/engine.rs` fixture).
fn structured() -> Graph {
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            edges.push((u, v));
        }
    }
    edges.extend_from_slice(&[(6, 7), (7, 8), (6, 8), (8, 0), (9, 10), (10, 11), (11, 9)]);
    edges.extend_from_slice(&[(11, 12), (12, 13)]);
    Graph::from_edges(14, &edges)
}

/// One request per objective, methods pinned so resolution cannot depend
/// on cache warmth (`Method::Auto` resolves against observed cache state,
/// which concurrency would make nondeterministic).
fn pinned_workload(psi: &Pattern) -> Vec<DsdRequest> {
    vec![
        DsdRequest::new(psi).method(Method::CoreExact),
        DsdRequest::new(psi).method(Method::PeelApp),
        DsdRequest::new(psi).objective(Objective::TopK(3)),
        DsdRequest::new(psi).objective(Objective::AtLeastK(8)),
        DsdRequest::new(psi).objective(Objective::AtMostK(4)),
        DsdRequest::new(psi).objective(Objective::WithQuery(vec![9])),
    ]
}

fn assert_identical(a: &Solution, b: &Solution, label: &str) {
    assert_eq!(a.vertices, b.vertices, "{label}: vertices differ");
    assert_eq!(
        a.density.to_bits(),
        b.density.to_bits(),
        "{label}: density not bit-identical"
    );
    assert_eq!(
        a.subgraphs.len(),
        b.subgraphs.len(),
        "{label}: subgraph count"
    );
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        assert_eq!(x.vertices, y.vertices, "{label}: subgraph vertices");
        assert_eq!(
            x.density.to_bits(),
            y.density.to_bits(),
            "{label}: subgraph density"
        );
    }
    assert_eq!(a.method, b.method, "{label}: resolved method");
    assert_eq!(a.outcome, b.outcome, "{label}: outcome");
}

/// (a) Concurrent `solve` over one shared engine returns bit-identical
/// solutions to a serial reference, for every objective.
#[test]
fn concurrent_solves_are_bit_identical_to_serial() {
    const THREADS: usize = 4;
    let psi = Pattern::triangle();
    let workload = pinned_workload(&psi);

    // Serial reference on its own service.
    let serial = DsdService::new();
    serial.register("g", structured());
    let reference: Vec<Solution> = workload
        .iter()
        .map(|r| serial.solve(&r.clone().on("g")).unwrap())
        .collect();

    // THREADS threads race the full workload over one shared engine.
    let service = DsdService::new();
    let engine = service.register("g", structured());
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let engine = Arc::clone(&engine);
            let workload = &workload;
            let reference = &reference;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for (req, expect) in workload.iter().zip(reference) {
                    let got = engine.solve(req);
                    assert_identical(&got, expect, &format!("{:?}", expect.objective));
                }
            });
        }
    });
}

/// (b) Two threads warming the same Ψ through the same engine pay exactly
/// one decomposition build — the double-checked build-once locking.
#[test]
fn racing_warmers_pay_one_build() {
    const WARMERS: usize = 8;
    let service = DsdService::new();
    let engine = service.register("g", structured());
    let psi = Pattern::triangle();
    let barrier = Barrier::new(WARMERS);
    std::thread::scope(|scope| {
        for _ in 0..WARMERS {
            let engine = Arc::clone(&engine);
            let psi = &psi;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                engine.warm(psi);
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(
        stats.decomposition_builds, 1,
        "N racing warmers must pay one build"
    );
    assert_eq!(stats.decomposition_hits, WARMERS - 1);
    assert_eq!(stats.oracle_builds, 1);
}

/// The same build-once guarantee holds when the warmers are full solves
/// (not just `warm`), across an isomorphic relabeling of Ψ.
#[test]
fn racing_solves_share_one_canonical_substrate() {
    const SOLVERS: usize = 6;
    let service = DsdService::new();
    let engine = service.register("g", structured());
    // The paw, two labelings — canonicalization must key them together.
    let labelings = [
        Pattern::c3_star(),
        Pattern::new("paw-b", 4, &[(1, 2), (2, 3), (1, 3), (2, 0)]),
    ];
    let barrier = Barrier::new(SOLVERS);
    std::thread::scope(|scope| {
        for i in 0..SOLVERS {
            let engine = Arc::clone(&engine);
            let psi = &labelings[i % 2];
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                engine.solve(&DsdRequest::new(psi).method(Method::PeelApp));
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(stats.decomposition_builds, 1);
    assert_eq!(stats.decomposition_hits, SOLVERS - 1);
}

/// (c) Catalog register/evict under contention is linearization-safe:
/// disjoint names all land, every evict of a present name succeeds
/// exactly once, and the final catalog is exactly the survivors.
#[test]
fn catalog_register_evict_under_contention() {
    const THREADS: usize = 8;
    let service = DsdService::new();
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for i in 0..THREADS {
            let service = &service;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let name = format!("g{i}");
                service.register(&name, structured());
                // A register is immediately visible to its own thread.
                assert!(service.engine(&name).is_some(), "{name} must be visible");
                // Everyone hammers list() while the catalog churns.
                let _ = service.list();
                if i % 2 == 1 {
                    assert!(service.evict(&name), "own registration must evict");
                    assert!(service.engine(&name).is_none());
                }
            });
        }
    });
    let expect: Vec<String> = (0..THREADS).step_by(2).map(|i| format!("g{i}")).collect();
    assert_eq!(service.list(), expect);
}

/// Concurrent register/evict races on ONE name always leave the catalog
/// in a legal state: either absent, or serving a fully-functional engine.
#[test]
fn same_name_register_evict_race_stays_consistent() {
    const ROUNDS: usize = 25;
    let service = DsdService::new();
    let psi = Pattern::triangle();
    let expected = {
        let reference = DsdService::new();
        reference.register("shared", structured());
        reference
            .solve(&DsdRequest::new(&psi).on("shared").method(Method::PeelApp))
            .unwrap()
    };
    let barrier = Barrier::new(3);
    std::thread::scope(|scope| {
        // Two registrars and one evictor fight over one name...
        for _ in 0..2 {
            let service = &service;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS {
                    service.register("shared", structured());
                }
            });
        }
        let service = &service;
        let barrier = &barrier;
        let psi = &psi;
        let expected = &expected;
        scope.spawn(move || {
            barrier.wait();
            for _ in 0..ROUNDS {
                // ...while reads observe only legal states.
                match service.solve(&DsdRequest::new(psi).on("shared").method(Method::PeelApp)) {
                    Ok(s) => assert_identical(&s, expected, "racing solve"),
                    Err(e) => assert_eq!(e, ServiceError::UnknownGraph("shared".into())),
                }
                service.evict("shared");
            }
        });
    });
    // The final state is one of the two legal outcomes.
    let end = service.list();
    assert!(end.is_empty() || end == vec!["shared".to_string()]);
}

/// An 8-worker batch over a mixed two-graph workload returns the same
/// solutions as the 1-worker batch, pays one decomposition build per
/// distinct (graph, Ψ), and reports coherent stats.
#[test]
fn batch_matches_serial_and_dedupes_substrates() {
    let patterns = [Pattern::triangle(), Pattern::edge()];
    let build_batch = || {
        let mut reqs = Vec::new();
        for graph in ["a", "b"] {
            for psi in &patterns {
                reqs.push(DsdRequest::new(psi).on(graph).method(Method::CoreExact));
                reqs.push(DsdRequest::new(psi).on(graph).method(Method::PeelApp));
                reqs.push(DsdRequest::new(psi).on(graph).objective(Objective::TopK(2)));
                reqs.push(
                    DsdRequest::new(psi)
                        .on(graph)
                        .objective(Objective::AtLeastK(6)),
                );
            }
        }
        reqs
    };

    let run = |par: Parallelism| {
        let service = DsdService::with_parallelism(par);
        service.register("a", structured());
        // Graph b: two K4s sharing a vertex plus a tail.
        let mut edges = Vec::new();
        for block in [[0u32, 1, 2, 3], [3, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((block[i], block[j]));
                }
            }
        }
        edges.push((6, 7));
        service.register("b", Graph::from_edges(8, &edges));
        service.solve_batch(build_batch())
    };

    let serial = run(Parallelism::serial());
    let batched = run(Parallelism::new(8));

    assert_eq!(serial.solutions.len(), batched.solutions.len());
    for (s, b) in serial.solutions.iter().zip(&batched.solutions) {
        let (s, b) = (s.as_ref().unwrap(), b.as_ref().unwrap());
        assert_identical(b, s, &format!("{:?}", s.objective));
    }
    for outcome in [&serial, &batched] {
        let st = &outcome.stats;
        assert_eq!(st.requests, 16);
        assert_eq!(st.groups, 4, "2 graphs × 2 patterns");
        assert_eq!(st.substrate_builds, 4, "one build per (graph, Ψ)");
        assert_eq!(st.substrate_hits, 12, "three warm requests per group");
        assert!(st.wall_nanos > 0);
    }
    assert_eq!(serial.stats.worker_busy_nanos.len(), 1);
    assert_eq!(batched.stats.worker_busy_nanos.len(), 8);
    assert!(batched.stats.utilization() > 0.0);
}
