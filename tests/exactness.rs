//! Cross-crate exactness tests: every exact algorithm must agree with
//! brute-force subset enumeration on small random graphs, and the two
//! exact algorithms must agree with each other everywhere.

use dsd::core::{core_exact, densest_subgraph, exact, oracle_for, FlowBackend, Method};
use dsd::graph::{Graph, GraphBuilder, VertexSet};
use dsd::motif::Pattern;
use proptest::prelude::*;

/// Brute-force ρopt over all non-empty vertex subsets.
fn brute_force_opt(g: &Graph, psi: &Pattern) -> f64 {
    let n = g.num_vertices();
    assert!(n <= 12, "brute force is exponential");
    let oracle = oracle_for(psi);
    let mut best = 0.0f64;
    for mask in 1u32..(1u32 << n) {
        let members: Vec<u32> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
        let set = VertexSet::from_members(n, &members);
        let rho = dsd::core::density(oracle.as_ref(), g, &set);
        best = best.max(rho);
    }
    best
}

fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |bits| {
            let mut b = GraphBuilder::new(n);
            let mut idx = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if bits[idx] {
                        b.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_matches_brute_force_for_edges(g in graph_strategy(9)) {
        let psi = Pattern::edge();
        let (r, _) = exact(&g, &psi, FlowBackend::Dinic);
        let want = brute_force_opt(&g, &psi);
        prop_assert!((r.density - want).abs() < 1e-7, "got {} want {}", r.density, want);
    }

    #[test]
    fn core_exact_matches_brute_force_for_triangles(g in graph_strategy(9)) {
        let psi = Pattern::triangle();
        let (r, _) = core_exact(&g, &psi);
        let want = brute_force_opt(&g, &psi);
        prop_assert!((r.density - want).abs() < 1e-7, "got {} want {}", r.density, want);
    }

    #[test]
    fn exact_and_core_exact_agree_on_4cliques(g in graph_strategy(10)) {
        let psi = Pattern::clique(4);
        let (a, _) = exact(&g, &psi, FlowBackend::Dinic);
        let (b, _) = core_exact(&g, &psi);
        prop_assert!((a.density - b.density).abs() < 1e-7);
    }

    #[test]
    fn pexact_matches_brute_force_for_two_star(g in graph_strategy(8)) {
        let psi = Pattern::two_star();
        let (r, _) = exact(&g, &psi, FlowBackend::Dinic);
        let want = brute_force_opt(&g, &psi);
        prop_assert!((r.density - want).abs() < 1e-7, "got {} want {}", r.density, want);
    }

    #[test]
    fn core_pexact_matches_brute_force_for_diamond(g in graph_strategy(8)) {
        let psi = Pattern::diamond();
        let (r, _) = core_exact(&g, &psi);
        let want = brute_force_opt(&g, &psi);
        prop_assert!((r.density - want).abs() < 1e-7, "got {} want {}", r.density, want);
    }

    #[test]
    fn pexact_matches_brute_force_for_c3_star(g in graph_strategy(8)) {
        let psi = Pattern::c3_star();
        let (r, _) = exact(&g, &psi, FlowBackend::Dinic);
        let want = brute_force_opt(&g, &psi);
        prop_assert!((r.density - want).abs() < 1e-7, "got {} want {}", r.density, want);
    }

    #[test]
    fn push_relabel_backend_agrees(g in graph_strategy(9)) {
        for psi in [Pattern::edge(), Pattern::triangle()] {
            let (a, _) = exact(&g, &psi, FlowBackend::Dinic);
            let (b, _) = exact(&g, &psi, FlowBackend::PushRelabel);
            prop_assert!((a.density - b.density).abs() < 1e-7, "{}", psi.name());
        }
    }

    #[test]
    fn reported_density_matches_reported_vertices(g in graph_strategy(9)) {
        let psi = Pattern::triangle();
        let r = densest_subgraph(&g, &psi, Method::CoreExact);
        let oracle = oracle_for(&psi);
        let set = VertexSet::from_members(g.num_vertices(), &r.vertices);
        let rho = dsd::core::density(oracle.as_ref(), &g, &set);
        prop_assert!((rho - r.density).abs() < 1e-9);
    }
}

#[test]
fn paper_figure_fixtures_have_their_documented_answers() {
    use dsd::datasets::fixtures;

    // Figure 1(a): EDS = S1 (11/7), triangle-CDS = S2 (1/2).
    let g = fixtures::figure1a();
    let eds = densest_subgraph(&g, &Pattern::edge(), Method::CoreExact);
    assert_eq!(eds.vertices, fixtures::FIGURE1A_S1.to_vec());
    assert!((eds.density - 11.0 / 7.0).abs() < 1e-9);
    let cds = densest_subgraph(&g, &Pattern::triangle(), Method::CoreExact);
    assert_eq!(cds.vertices, fixtures::FIGURE1A_S2.to_vec());
    assert!((cds.density - 0.5).abs() < 1e-9);

    // Figure 2(a): triangle-density 1/3 on {B, C, D}.
    let g2 = fixtures::figure2a();
    let r2 = densest_subgraph(&g2, &Pattern::triangle(), Method::Exact);
    assert_eq!(r2.vertices, vec![1, 2, 3]);
    assert!((r2.density - 1.0 / 3.0).abs() < 1e-9);

    // Figure 6(a): diamond-PDS = the K4 {A, D, E, F} with 3 instances.
    let g6 = fixtures::figure6a();
    let r6 = densest_subgraph(&g6, &Pattern::diamond(), Method::CoreExact);
    assert_eq!(r6.vertices, vec![0, 3, 4, 5]);
    assert!((r6.density - 0.75).abs() < 1e-9);
}
