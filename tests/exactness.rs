//! Cross-crate exactness tests: every exact algorithm must agree with
//! brute-force subset enumeration on small random graphs, and the two
//! exact algorithms must agree with each other everywhere. Driven by a
//! deterministic xorshift seed loop (no crates.io access in the container).

use dsd::core::{core_exact, densest_subgraph, exact, oracle_for, FlowBackend, Method};
use dsd::graph::testing::XorShift;
use dsd::graph::{Graph, VertexSet};
use dsd::motif::Pattern;

/// Brute-force ρopt over all non-empty vertex subsets.
fn brute_force_opt(g: &Graph, psi: &Pattern) -> f64 {
    let n = g.num_vertices();
    assert!(n <= 12, "brute force is exponential");
    let oracle = oracle_for(psi);
    let mut best = 0.0f64;
    for mask in 1u32..(1u32 << n) {
        let members: Vec<u32> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
        let set = VertexSet::from_members(n, &members);
        let rho = dsd::core::density(oracle.as_ref(), g, &set);
        best = best.max(rho);
    }
    best
}

#[test]
fn exact_matches_brute_force_for_edges() {
    let mut rng = XorShift::new(0xED6E);
    for _ in 0..64 {
        let g = rng.random_graph(2, 9, 50);
        let psi = Pattern::edge();
        let (r, _) = exact(&g, &psi, FlowBackend::Dinic);
        let want = brute_force_opt(&g, &psi);
        assert!(
            (r.density - want).abs() < 1e-7,
            "got {} want {}",
            r.density,
            want
        );
    }
}

#[test]
fn core_exact_matches_brute_force_for_triangles() {
    let mut rng = XorShift::new(0x7219);
    for _ in 0..64 {
        let g = rng.random_graph(2, 9, 50);
        let psi = Pattern::triangle();
        let (r, _) = core_exact(&g, &psi);
        let want = brute_force_opt(&g, &psi);
        assert!(
            (r.density - want).abs() < 1e-7,
            "got {} want {}",
            r.density,
            want
        );
    }
}

#[test]
fn exact_and_core_exact_agree_on_4cliques() {
    let mut rng = XorShift::new(0x4C11);
    for _ in 0..64 {
        let g = rng.random_graph(2, 10, 50);
        let psi = Pattern::clique(4);
        let (a, _) = exact(&g, &psi, FlowBackend::Dinic);
        let (b, _) = core_exact(&g, &psi);
        assert!((a.density - b.density).abs() < 1e-7);
    }
}

#[test]
fn pexact_matches_brute_force_for_two_star() {
    let mut rng = XorShift::new(0x25A7);
    for _ in 0..64 {
        let g = rng.random_graph(2, 8, 50);
        let psi = Pattern::two_star();
        let (r, _) = exact(&g, &psi, FlowBackend::Dinic);
        let want = brute_force_opt(&g, &psi);
        assert!(
            (r.density - want).abs() < 1e-7,
            "got {} want {}",
            r.density,
            want
        );
    }
}

#[test]
fn core_pexact_matches_brute_force_for_diamond() {
    let mut rng = XorShift::new(0xD1A5);
    for _ in 0..64 {
        let g = rng.random_graph(2, 8, 50);
        let psi = Pattern::diamond();
        let (r, _) = core_exact(&g, &psi);
        let want = brute_force_opt(&g, &psi);
        assert!(
            (r.density - want).abs() < 1e-7,
            "got {} want {}",
            r.density,
            want
        );
    }
}

#[test]
fn pexact_matches_brute_force_for_c3_star() {
    let mut rng = XorShift::new(0xC357);
    for _ in 0..64 {
        let g = rng.random_graph(2, 8, 50);
        let psi = Pattern::c3_star();
        let (r, _) = exact(&g, &psi, FlowBackend::Dinic);
        let want = brute_force_opt(&g, &psi);
        assert!(
            (r.density - want).abs() < 1e-7,
            "got {} want {}",
            r.density,
            want
        );
    }
}

#[test]
fn push_relabel_backend_agrees() {
    let mut rng = XorShift::new(0x9815);
    for _ in 0..64 {
        let g = rng.random_graph(2, 9, 50);
        for psi in [Pattern::edge(), Pattern::triangle()] {
            let (a, _) = exact(&g, &psi, FlowBackend::Dinic);
            let (b, _) = exact(&g, &psi, FlowBackend::PushRelabel);
            assert!((a.density - b.density).abs() < 1e-7, "{}", psi.name());
        }
    }
}

#[test]
fn reported_density_matches_reported_vertices() {
    let mut rng = XorShift::new(0x4E91);
    for _ in 0..64 {
        let g = rng.random_graph(2, 9, 50);
        let psi = Pattern::triangle();
        let r = densest_subgraph(&g, &psi, Method::CoreExact);
        let oracle = oracle_for(&psi);
        let set = VertexSet::from_members(g.num_vertices(), &r.vertices);
        let rho = dsd::core::density(oracle.as_ref(), &g, &set);
        assert!((rho - r.density).abs() < 1e-9);
    }
}

#[test]
fn paper_figure_fixtures_have_their_documented_answers() {
    use dsd::datasets::fixtures;

    // Figure 1(a): EDS = S1 (11/7), triangle-CDS = S2 (1/2).
    let g = fixtures::figure1a();
    let eds = densest_subgraph(&g, &Pattern::edge(), Method::CoreExact);
    assert_eq!(eds.vertices, fixtures::FIGURE1A_S1.to_vec());
    assert!((eds.density - 11.0 / 7.0).abs() < 1e-9);
    let cds = densest_subgraph(&g, &Pattern::triangle(), Method::CoreExact);
    assert_eq!(cds.vertices, fixtures::FIGURE1A_S2.to_vec());
    assert!((cds.density - 0.5).abs() < 1e-9);

    // Figure 2(a): triangle-density 1/3 on {B, C, D}.
    let g2 = fixtures::figure2a();
    let r2 = densest_subgraph(&g2, &Pattern::triangle(), Method::Exact);
    assert_eq!(r2.vertices, vec![1, 2, 3]);
    assert!((r2.density - 1.0 / 3.0).abs() < 1e-9);

    // Figure 6(a): diamond-PDS = the K4 {A, D, E, F} with 3 instances.
    let g6 = fixtures::figure6a();
    let r6 = densest_subgraph(&g6, &Pattern::diamond(), Method::CoreExact);
    assert_eq!(r6.vertices, vec![0, 3, 4, 5]);
    assert!((r6.density - 0.75).abs() < 1e-9);
}
