//! End-to-end pipeline tests: registry datasets → statistics → DSD
//! algorithms, plus edge-case/failure-injection coverage.

use dsd::core::{
    core_app, core_exact, densest_subgraph, densest_with_query, emcore_max_core,
    k_core_decomposition, peel_app, Method,
};
use dsd::datasets::{all_datasets, compute_stats, dataset, DatasetKind};
use dsd::graph::io::{parse_edge_list, to_edge_list_string};
use dsd::graph::Graph;
use dsd::motif::Pattern;

#[test]
fn yeast_standin_full_pipeline() {
    let d = dataset("Yeast").expect("registered");
    let g = d.generate();
    let stats = compute_stats(&g);
    assert_eq!(stats.vertices, 1116);
    // Exact and approximate answers, cross-checked.
    let (opt, meta) = core_exact(&g, &Pattern::triangle());
    let approx = core_app(&g, &Pattern::triangle());
    assert!(approx.result.density <= opt.density + 1e-9);
    assert!(approx.result.density + 1e-9 >= opt.density / 3.0);
    assert!(meta.kmax as f64 >= opt.density);
}

#[test]
fn io_round_trip_preserves_answers() {
    let d = dataset("Netscience").expect("registered");
    let g = d.generate();
    let text = to_edge_list_string(&g);
    let g2 = parse_edge_list(&text).expect("round trip");
    assert_eq!(g, g2);
    let a = densest_subgraph(&g, &Pattern::edge(), Method::CoreExact);
    let b = densest_subgraph(&g2, &Pattern::edge(), Method::CoreExact);
    assert_eq!(a.vertices, b.vertices);
}

#[test]
fn all_registry_datasets_generate() {
    for d in all_datasets() {
        let g = d.generate();
        assert!(g.num_vertices() > 0, "{} generated empty", d.name);
        assert!(g.num_edges() > 0, "{} generated edgeless", d.name);
        if d.kind == DatasetKind::SmallReal {
            assert_eq!(g.num_vertices(), d.paper_vertices, "{}", d.name);
        }
    }
}

#[test]
fn emcore_agrees_with_bottom_up_on_standins() {
    let g = dataset("As-733").unwrap().generate();
    let em = emcore_max_core(&g);
    let classical = k_core_decomposition(&g);
    assert_eq!(em.kmax, classical.kmax as u64);
    assert_eq!(em.result.vertices, classical.max_core().to_vec());
}

#[test]
fn query_variant_on_standin() {
    let g = dataset("Yeast").unwrap().generate();
    let unconstrained = densest_subgraph(&g, &Pattern::edge(), Method::CoreExact);
    // Querying a vertex of the EDS returns the EDS density.
    let inside = unconstrained.vertices[0];
    let r = densest_with_query(&g, &[inside]).unwrap();
    assert!((r.density - unconstrained.density).abs() < 1e-6);
    // Querying any vertex can never beat the unconstrained optimum.
    let r2 = densest_with_query(&g, &[0]).unwrap();
    assert!(r2.density <= unconstrained.density + 1e-9);
    assert!(r2.vertices.contains(&0));
}

// ---- failure injection -----------------------------------------------

#[test]
fn empty_graph_everywhere() {
    let g = Graph::empty(0);
    for method in [
        Method::Exact,
        Method::CoreExact,
        Method::PeelApp,
        Method::IncApp,
    ] {
        let r = densest_subgraph(&g, &Pattern::triangle(), method);
        assert!(r.is_empty(), "{method:?}");
        assert_eq!(r.density, 0.0);
    }
}

#[test]
fn isolated_vertices_only() {
    let g = Graph::empty(7);
    let r = densest_subgraph(&g, &Pattern::edge(), Method::CoreExact);
    assert!(r.is_empty());
    let peel = peel_app(&g, &Pattern::edge());
    assert!(peel.is_empty());
}

#[test]
fn pattern_with_no_instances() {
    // A tree has no cycles and no triangles.
    let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
    for psi in [
        Pattern::triangle(),
        Pattern::diamond(),
        Pattern::two_triangle(),
    ] {
        let r = densest_subgraph(&g, &psi, Method::CoreExact);
        assert!(r.is_empty(), "{}", psi.name());
    }
    // But stars exist everywhere.
    let s = densest_subgraph(&g, &Pattern::two_star(), Method::CoreExact);
    assert!(!s.is_empty());
}

#[test]
fn duplicate_and_self_loop_input() {
    let g = parse_edge_list("0 1\n1 0\n0 0\n1 2\n0 2\n0 2\n").unwrap();
    assert_eq!(g.num_edges(), 3);
    let r = densest_subgraph(&g, &Pattern::triangle(), Method::CoreExact);
    assert_eq!(r.vertices, vec![0, 1, 2]);
    assert!((r.density - 1.0 / 3.0).abs() < 1e-9);
}

#[test]
fn disconnected_graph_picks_denser_component() {
    // Component A: C4 (density 1). Component B: K4 (density 1.5).
    let g = Graph::from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
        ],
    );
    let r = densest_subgraph(&g, &Pattern::edge(), Method::CoreExact);
    assert_eq!(r.vertices, vec![4, 5, 6, 7]);
}

#[test]
fn single_edge_graph() {
    let g = Graph::from_edges(2, &[(0, 1)]);
    let r = densest_subgraph(&g, &Pattern::edge(), Method::CoreExact);
    assert_eq!(r.vertices, vec![0, 1]);
    assert!((r.density - 0.5).abs() < 1e-9);
}

#[test]
fn facade_reexports_compose() {
    // The `dsd` facade exposes all five crates coherently.
    let g = dsd::datasets::er::er(50, 0.2, 1);
    let order = dsd::graph::degeneracy_order(&g);
    assert!(order.degeneracy > 0);
    let cliques = dsd::motif::count_cliques(&g, 3);
    let r = densest_subgraph(&g, &Pattern::triangle(), Method::CoreApp);
    if cliques > 0 {
        assert!(r.density > 0.0);
    }
    let mut net = dsd::flow::FlowNetwork::new(2);
    net.add_edge(0, 1, 1.0);
    use dsd::flow::MaxFlow;
    assert!((dsd::flow::Dinic::new().max_flow(&mut net, 0, 1) - 1.0).abs() < 1e-9);
}
