//! Differential suite for incremental Ψ-substrate repair.
//!
//! The contract: after `DsdEngine::apply`, a warm engine whose
//! Ψ-substrates were *repaired in place* (rows incident to removed edges
//! tombstoned through the incidence CSR, new instances enumerated from
//! inserted edges and appended) answers every query **bit-identically**
//! to a cold engine rebuilt from scratch over the materialized graph —
//! across edge, clique, star, diamond, and general Ψ. Companion tests
//! pin the typed fallback (repair growth past the store budget rebuilds
//! instead) and the serve governor's ledger (resized in place on repair,
//! reconciled after every batch).
//!
//! Iteration counts honour `DSD_PROP_ITERS` like `tests/dynamic.rs`.

use std::collections::BTreeSet;
use std::sync::Arc;

use dsd::core::{DsdEngine, DsdRequest, Method, Solution, SubstrateGovernor};
use dsd::graph::{Graph, GraphUpdate, VertexId};
use dsd::motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iteration knob: `DSD_PROP_ITERS` overrides, `default` otherwise.
fn prop_iters(default: usize) -> usize {
    std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A random base graph as (n, edge set).
fn random_base(rng: &mut StdRng) -> (usize, BTreeSet<(VertexId, VertexId)>) {
    let n = rng.gen_range(12usize..=18);
    let p = rng.gen_range(0.2f64..0.4);
    let mut edges = BTreeSet::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p) {
                edges.insert((u, v));
            }
        }
    }
    (n, edges)
}

/// A mixed batch: deletes some present edges, inserts some absent ones,
/// and mirrors the net effect onto `edges`.
fn mixed_batch(
    rng: &mut StdRng,
    n: usize,
    edges: &mut BTreeSet<(VertexId, VertexId)>,
) -> Vec<GraphUpdate> {
    let mut batch = Vec::new();
    let present: Vec<_> = edges.iter().copied().collect();
    for &(u, v) in &present {
        if rng.gen_bool(0.15) {
            batch.push(GraphUpdate::Delete(u, v));
            edges.remove(&(u, v));
        }
    }
    for _ in 0..rng.gen_range(1usize..=6) {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if edges.insert(key) {
            batch.push(GraphUpdate::Insert(key.0, key.1));
        }
    }
    batch
}

fn assert_bit_identical(ctx: &str, warm: &Solution, cold: &Solution) {
    assert_eq!(warm.vertices, cold.vertices, "vertices: {ctx}");
    assert_eq!(
        warm.density.to_bits(),
        cold.density.to_bits(),
        "density bits: {ctx}"
    );
    assert_eq!(warm.stats.kmax, cold.stats.kmax, "kmax: {ctx}");
    assert_eq!(warm.guarantee, cold.guarantee, "guarantee: {ctx}");
}

/// The acceptance differential: repaired substrates answer-identical to
/// rebuilt ones across every Ψ shape the store can repair — edge and
/// larger cliques (kClist-rooted re-enumeration), the two-star, the
/// diamond, and a general pattern (instance re-enumeration + recount).
#[test]
fn repaired_substrates_answer_identical_to_rebuilt() {
    let psis = [
        Pattern::edge(),
        Pattern::triangle(),
        Pattern::clique(4),
        Pattern::two_star(),
        Pattern::diamond(),
        Pattern::c3_star(),
    ];
    let iters = prop_iters(6);
    let mut repaired_total = 0usize;
    for seed in 0..iters as u64 {
        for psi in &psis {
            let mut rng = StdRng::seed_from_u64(0x5EED_2E9A ^ (seed << 8));
            let (n, mut edges) = random_base(&mut rng);
            let edge_list: Vec<_> = edges.iter().copied().collect();
            let warm = DsdEngine::new(Graph::from_edges(n, &edge_list));
            // Warm the Ψ-substrate so apply() has something to repair.
            warm.request(psi).method(Method::CoreExact).solve();

            for round in 0..3 {
                let batch = mixed_batch(&mut rng, n, &mut edges);
                if batch.is_empty() {
                    continue;
                }
                let stats = warm.apply(&batch);
                repaired_total += stats.substrates_repaired;
                let edge_list: Vec<_> = edges.iter().copied().collect();
                let cold = DsdEngine::new(Graph::from_edges(n, &edge_list));
                for method in [Method::CoreExact, Method::PeelApp] {
                    let req = DsdRequest::new(psi).method(method);
                    let ctx = format!("seed {seed}, {}, round {round}, {method:?}", psi.name());
                    assert_bit_identical(&ctx, &warm.solve(&req), &cold.solve(&req));
                }
            }
        }
    }
    assert!(
        repaired_total > 0,
        "the sweep never exercised the repair path"
    );
}

/// Satellite: repair that would grow the store past its byte budget is a
/// *typed* fallback — the oracle is invalidated (counted in
/// `substrates_rebuilt`), never silently truncated, and the next solve
/// still matches a cold engine.
#[test]
fn repair_growth_past_budget_falls_back_to_rebuild() {
    // A sparse graph with one triangle; K9 edges inserted among the
    // remaining vertices explode the triangle count far past any budget
    // sized for the warm store.
    let n = 16usize;
    let base = vec![(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4)];
    let warm = DsdEngine::new(Graph::from_edges(n, &base));
    warm.request(&Pattern::triangle())
        .method(Method::CoreExact)
        .solve();
    let warm_bytes = warm.substrate_bytes();
    assert!(warm_bytes > 0, "warm substrate occupies bytes");

    // Rebuild the engine with a budget that admits the warm store but
    // not the post-insert one (K9 alone holds 84 triangles).
    let warm = DsdEngine::new(Graph::from_edges(n, &base)).with_substrate_budget(Some(warm_bytes));
    warm.request(&Pattern::triangle())
        .method(Method::CoreExact)
        .solve();
    let mut batch = Vec::new();
    let mut edges: BTreeSet<_> = base.iter().copied().collect();
    for u in 6..15u32 {
        for v in (u + 1)..15 {
            batch.push(GraphUpdate::Insert(u, v));
            edges.insert((u, v));
        }
    }
    let stats = warm.apply(&batch);
    assert_eq!(
        stats.substrates_rebuilt, 1,
        "budget-exceeding growth must fall back to rebuild"
    );
    assert_eq!(stats.substrates_repaired, 0);

    let edge_list: Vec<_> = edges.iter().copied().collect();
    let cold =
        DsdEngine::new(Graph::from_edges(n, &edge_list)).with_substrate_budget(Some(warm_bytes));
    let req = DsdRequest::new(&Pattern::triangle()).method(Method::CoreExact);
    assert_bit_identical("post-fallback", &warm.solve(&req), &cold.solve(&req));
}

/// Satellite: the governor's ledger entry for a repaired substrate is
/// resized in place (never dropped through `on_engine_release`), so
/// reconciliation against summed `substrate_bytes()` holds after every
/// repairing batch — with an unlimited budget and with a 1-byte budget
/// whose enforcement evicts the entry the moment it lands.
#[test]
fn governor_ledger_reconciles_after_in_place_repair() {
    for budget in [None, Some(1u64)] {
        let mut rng = StdRng::seed_from_u64(0x60_7E4A);
        let (n, mut edges) = random_base(&mut rng);
        let edge_list: Vec<_> = edges.iter().copied().collect();
        let engine = Arc::new(DsdEngine::new(Graph::from_edges(n, &edge_list)));
        let governor = SubstrateGovernor::new(budget);
        governor.attach(&engine);

        engine
            .request(&Pattern::triangle())
            .method(Method::CoreExact)
            .solve();
        governor.debug_assert_reconciled();

        let mut repaired = 0usize;
        for _ in 0..4 {
            let batch = mixed_batch(&mut rng, n, &mut edges);
            if batch.is_empty() {
                continue;
            }
            let stats = engine.apply(&batch);
            repaired += stats.substrates_repaired;
            governor.debug_assert_reconciled();
            // Keep the substrate warm for the next round's repair.
            engine
                .request(&Pattern::triangle())
                .method(Method::CoreExact)
                .solve();
            governor.debug_assert_reconciled();
        }
        if budget.is_none() {
            assert!(repaired > 0, "unbudgeted runs must exercise repair");
        }
    }
}
