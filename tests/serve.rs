//! Serving-runtime tests: the admission-controlled pipeline is
//! bit-identical to a synchronous replay, forced substrate evictions
//! never corrupt in-flight requests, the governor's ledger never drifts
//! from ground truth, and the shed paths (overload, deadline) are
//! deterministic.
//!
//! Iteration counts honour the `DSD_PROP_ITERS` env knob (the nightly CI
//! job runs the suites with elevated counts).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use dsd::core::{
    DsdEngine, DsdRequest, DsdServer, DsdService, Method, ServeConfig, ServeError, ServeOutcome,
    Solution, SubstrateGovernor, Ticket,
};
use dsd::graph::{Graph, GraphBuilder, GraphUpdate, VertexId};
use dsd::motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iteration knob: `DSD_PROP_ITERS` overrides, `default` otherwise.
fn prop_iters(default: usize) -> usize {
    std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn random_graph(rng: &mut StdRng, n_lo: usize, n_hi: usize) -> Graph {
    let n = rng.gen_range(n_lo..=n_hi);
    let p = rng.gen_range(0.10f64..0.30);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// One op of a mixed workload script, replayable both through the
/// pipeline and through a serial reference.
enum Op {
    Query {
        graph: usize,
        req: DsdRequest,
    },
    Update {
        graph: usize,
        edges: Vec<GraphUpdate>,
    },
}

/// A random mixed query/update script over `graphs.len()` graphs, with
/// methods pinned (Auto's cache-sensitivity would break bit-identity).
fn random_script(rng: &mut StdRng, graphs: &[Graph], names: &[&str], ops: usize) -> Vec<Op> {
    let patterns = [Pattern::edge(), Pattern::triangle(), Pattern::two_star()];
    let methods = [Method::CoreExact, Method::PeelApp, Method::IncApp];
    (0..ops)
        .map(|_| {
            let graph = rng.gen_range(0..graphs.len());
            if rng.gen_bool(0.25) {
                let n = graphs[graph].num_vertices() as VertexId;
                let edges = (0..rng.gen_range(1usize..=4))
                    .map(|_| {
                        let u = rng.gen_range(0..n);
                        let v = rng.gen_range(0..n);
                        if rng.gen_bool(0.5) {
                            GraphUpdate::Insert(u, v)
                        } else {
                            GraphUpdate::Delete(u, v)
                        }
                    })
                    .collect();
                Op::Update { graph, edges }
            } else {
                let psi = &patterns[rng.gen_range(0..patterns.len())];
                let method = methods[rng.gen_range(0..methods.len())];
                let req = DsdRequest::new(psi).on(names[graph]).method(method);
                Op::Query { graph, req }
            }
        })
        .collect()
}

/// Serial ground truth: replay the script in order on fresh engines.
/// Returns one `Option<Solution>` per op (None for updates).
fn reference_replay(graphs: &[Graph], script: &[Op]) -> Vec<Option<Solution>> {
    let engines: Vec<DsdEngine<'static>> =
        graphs.iter().map(|g| DsdEngine::new(g.clone())).collect();
    script
        .iter()
        .map(|op| match op {
            Op::Query { graph, req } => Some(engines[*graph].solve(req)),
            Op::Update { graph, edges } => {
                engines[*graph].apply(edges);
                None
            }
        })
        .collect()
}

/// Replays the script through a `DsdServer`, waiting every ticket, and
/// asserts each query's answer (vertices, density bits, epoch) matches
/// the serial reference. Returns the server for stats assertions.
fn pipeline_replay_matches(
    graphs: &[Graph],
    names: &[&str],
    script: &[Op],
    expected: &[Option<Solution>],
    config: ServeConfig,
) -> DsdServer {
    let server = DsdServer::new(config);
    for (name, g) in names.iter().zip(graphs) {
        server.register(*name, g.clone());
    }
    let mut tickets: Vec<(usize, Ticket)> = Vec::new();
    for (i, op) in script.iter().enumerate() {
        let ticket = match op {
            Op::Query { req, .. } => server.submit(req.clone()),
            Op::Update { graph, edges } => server.submit_update(names[*graph], edges.clone()),
        };
        tickets.push((i, ticket.expect("queue deep enough for the whole script")));
    }
    for (i, ticket) in tickets {
        let outcome = ticket.wait().expect("no sheds in this configuration");
        match (&script[i], outcome) {
            (Op::Query { .. }, ServeOutcome::Solved(got)) => {
                let want = expected[i].as_ref().expect("reference solved this op");
                assert_eq!(got.vertices, want.vertices, "op {i}: vertices differ");
                assert_eq!(
                    got.density.to_bits(),
                    want.density.to_bits(),
                    "op {i}: density not bit-identical"
                );
                assert_eq!(
                    got.stats.epoch, want.stats.epoch,
                    "op {i}: FIFO/barrier order broken — query ran at the wrong epoch"
                );
            }
            (Op::Update { .. }, ServeOutcome::Updated(_)) => {}
            _ => panic!("op {i}: outcome kind does not match the submitted job"),
        }
    }
    server.drain();
    server
}

/// The tentpole contract: mixed query/update traffic through the
/// pipeline is bit-identical (answers and epochs) to a serial replay —
/// per-graph FIFO plus the update barrier is exactly serial order, while
/// cross-graph traffic interleaves freely.
#[test]
fn pipeline_is_bit_identical_to_serial_replay() {
    // One iteration is a full 40-op pipeline run plus its serial
    // reference; cap the nightly elevation accordingly.
    let iters = prop_iters(4).min(100);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0x5E27E + seed);
        let graphs: Vec<Graph> = (0..3).map(|_| random_graph(&mut rng, 16, 30)).collect();
        let names = ["alpha", "beta", "gamma"];
        let script = random_script(&mut rng, &graphs, &names, 40);
        let expected = reference_replay(&graphs, &script);
        let server = pipeline_replay_matches(
            &graphs,
            &names,
            &script,
            &expected,
            ServeConfig {
                workers: 4,
                queue_depth: 64,
                substrate_budget: None,
                ..ServeConfig::default()
            },
        );
        let stats = server.stats();
        assert_eq!(stats.shed_overload, 0);
        assert_eq!(stats.shed_deadline, 0);
        assert_eq!(stats.completed as usize, script.len());
    }
}

/// Chaos variant: a byte budget tight enough to force constant LRU
/// eviction changes *nothing* about the answers — in-flight snapshots
/// hold their own `Arc`s, so a dropped store is rebuilt, never observed
/// mid-request. The governor must report the eviction/rebuild churn.
#[test]
fn forced_evictions_never_change_answers() {
    // Same cap as the replay test: each iteration is a whole script.
    let iters = prop_iters(4).min(100);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0xE71C + seed);
        let graphs: Vec<Graph> = (0..3).map(|_| random_graph(&mut rng, 16, 30)).collect();
        let names = ["alpha", "beta", "gamma"];
        let script = random_script(&mut rng, &graphs, &names, 40);
        let expected = reference_replay(&graphs, &script);
        // A budget of one byte: every entry is over budget the moment it
        // lands, so each unpinned substrate is evicted at settlement.
        let server = pipeline_replay_matches(
            &graphs,
            &names,
            &script,
            &expected,
            ServeConfig {
                workers: 4,
                queue_depth: 64,
                substrate_budget: Some(1),
                ..ServeConfig::default()
            },
        );
        let gov = server.governor().stats();
        assert!(gov.evictions > 0, "a 1-byte budget must evict");
        assert!(
            gov.resident_bytes <= 1 || gov.violations > 0,
            "settled ledger over budget without a counted violation"
        );
    }
}

/// Direct assault on the store handles: one thread hammers
/// `evict_substrate` while query threads solve — every answer matches
/// the warm single-threaded one bit for bit.
#[test]
fn concurrent_evict_substrate_never_corrupts_in_flight_solves() {
    let mut rng = StdRng::seed_from_u64(0xAB5E);
    let g = random_graph(&mut rng, 24, 24);
    let psi = Pattern::triangle();
    let key = dsd::core::pattern_key(&psi);
    let engine = Arc::new(DsdEngine::new(g));
    let want = engine.request(&psi).method(Method::CoreExact).solve();

    let iters = prop_iters(200);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let evictor = {
            let engine = Arc::clone(&engine);
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine.evict_substrate(&key);
                }
            })
        };
        let solvers: Vec<_> = (0..3)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let want = &want;
                let psi = &psi;
                scope.spawn(move || {
                    for i in 0..iters {
                        let got = engine.request(psi).method(Method::CoreExact).solve();
                        assert_eq!(got.vertices, want.vertices, "solve {i} diverged");
                        assert_eq!(got.density.to_bits(), want.density.to_bits());
                    }
                })
            })
            .collect();
        // Keep the evictor hammering until every solver finished, so
        // evictions genuinely overlap in-flight solves end to end.
        for s in solvers {
            s.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        evictor.join().unwrap();
    });
}

/// Satellite 1: the governor's ledger follows `DsdService::evict` and
/// engine drop — reconciliation against summed `substrate_bytes()` holds
/// at every quiescent point.
#[test]
fn governor_ledger_tracks_updates_evict_and_engine_drop() {
    let mut rng = StdRng::seed_from_u64(0x1ED6E2);
    let governor = SubstrateGovernor::new(None);
    let service = DsdService::new().with_governor(Arc::clone(&governor));
    service.register("a", random_graph(&mut rng, 20, 30));
    service.register("b", random_graph(&mut rng, 20, 30));

    let psi = Pattern::triangle();
    for name in ["a", "b"] {
        service
            .solve(&DsdRequest::new(&psi).on(name).method(Method::CoreExact))
            .unwrap();
    }
    let (ledger, actual) = governor.reconcile();
    assert_eq!(ledger, actual, "ledger drifted after warmup");
    assert!(ledger > 0, "triangle substrates occupy bytes");

    // An update invalidates a's substrates; the apply hook reports it.
    service.update("a", &[GraphUpdate::Insert(0, 1)]).unwrap();
    let (ledger, actual) = governor.reconcile();
    assert_eq!(ledger, actual, "ledger drifted after update");

    // Re-warm a, then evict it: the catalog held the only strong
    // reference, so the engine drops here and reports its bytes.
    service
        .solve(&DsdRequest::new(&psi).on("a").method(Method::CoreExact))
        .unwrap();
    assert!(service.evict("a"));
    let (ledger, actual) = governor.reconcile();
    assert_eq!(ledger, actual, "ledger drifted after evict + engine drop");
    governor.debug_assert_reconciled();
}

/// Admission control with `workers: 0` is fully deterministic: the
/// queue fills to exactly `queue_depth`, the next submit sheds typed,
/// and `step()` makes room again.
#[test]
fn overload_sheds_typed_and_recovers() {
    let server = DsdServer::new(ServeConfig {
        workers: 0,
        queue_depth: 2,
        ..ServeConfig::default()
    });
    server.register("toy", Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]));
    let psi = Pattern::triangle();
    let req = || DsdRequest::new(&psi).on("toy").method(Method::PeelApp);

    let t1 = server.submit(req()).unwrap();
    let _t2 = server.submit(req()).unwrap();
    match server.submit(req()) {
        Err(ServeError::Overloaded { graph, depth }) => {
            assert_eq!(graph, "toy");
            assert_eq!(depth, 2);
        }
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("expected Overloaded, got an admitted job"),
    }
    assert_eq!(server.stats().shed_overload, 1);

    assert!(server.step(), "one job dispatchable");
    let solved = t1.wait().unwrap().solution().unwrap();
    assert_eq!(solved.vertices, vec![0, 1, 2]);
    server.submit(req()).unwrap();

    // Routing failures are typed too, and never consume queue slots.
    assert!(matches!(
        server.submit(DsdRequest::new(&psi)),
        Err(ServeError::Unrouted)
    ));
    assert!(matches!(
        server.submit(DsdRequest::new(&psi).on("gone")),
        Err(ServeError::UnknownGraph(_))
    ));
}

/// A zero deadline expires every job while queued; dispatch sheds it
/// with `DeadlineExceeded` without running the solve.
#[test]
fn expired_deadlines_shed_at_dispatch() {
    let server = DsdServer::new(ServeConfig {
        workers: 0,
        queue_depth: 8,
        deadline: Some(Duration::ZERO),
        ..ServeConfig::default()
    });
    server.register("toy", Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]));
    let psi = Pattern::triangle();
    let ticket = server
        .submit(DsdRequest::new(&psi).on("toy").method(Method::PeelApp))
        .unwrap();
    std::thread::sleep(Duration::from_millis(2));
    assert!(server.step());
    assert!(matches!(ticket.wait(), Err(ServeError::DeadlineExceeded)));
    let stats = server.stats();
    assert_eq!(stats.shed_deadline, 1);
    assert_eq!(stats.completed, 0);
}

/// The per-graph barrier, observed through epochs: a query queued after
/// an update on the same graph must see the bumped epoch; a query queued
/// before it must see the old one. FIFO makes this deterministic even
/// with a full worker pool.
#[test]
fn updates_barrier_their_own_graph_queue() {
    let server = DsdServer::new(ServeConfig {
        workers: 4,
        queue_depth: 64,
        ..ServeConfig::default()
    });
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
    server.register("hot", g.clone());
    server.register("cold", g);
    let psi = Pattern::triangle();
    let q = |name: &str| DsdRequest::new(&psi).on(name).method(Method::CoreExact);

    let mut tickets: VecDeque<(u64, Ticket)> = VecDeque::new();
    for round in 0..4u64 {
        tickets.push_back((round, server.submit(q("hot")).unwrap()));
        server
            .submit_update("hot", vec![GraphUpdate::Insert(round as u32, 5)])
            .unwrap();
        // Cross-traffic on the other graph, never barriered.
        tickets.push_back((0, server.submit(q("cold")).unwrap()));
    }
    let before = tickets.len();
    for (expected_epoch, ticket) in tickets {
        let s = ticket.wait().unwrap().solution().unwrap();
        assert_eq!(
            s.stats.epoch, expected_epoch,
            "query observed the wrong epoch through the barrier"
        );
    }
    server.drain();
    assert!(before > 0);
}
