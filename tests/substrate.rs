//! Differential suite for the columnar instance substrate.
//!
//! The contract under test: the store-backed [`MaterializedOracle`] — and
//! the bucket-queue peel it drives through its `InstancePeeler` — is
//! **bit-identical** to the streaming oracles it replaced, for every Ψ
//! shape (edge / clique / star / diamond / general), on degrees,
//! decrements, core numbers, peel order, and the PeelApp / IncApp /
//! CoreApp results built on top. A second group regression-tests the
//! engine integration: byte-budget fallbacks change nothing but speed,
//! and graph updates never serve a stale store.
//!
//! Iteration counts honour the `DSD_PROP_ITERS` env knob (the nightly CI
//! job runs the suites with elevated counts).

use dsd::core::oracle::{CliqueOracle, DiamondOracle, GenericPatternOracle, StarOracle};
use dsd::core::{
    decompose, inc_app_from, peel_app_from, DensityOracle, DsdEngine, MaterializedOracle, Method,
    Objective, Parallelism, StoreFallback,
};
use dsd::graph::{Graph, GraphBuilder, GraphUpdate, VertexId, VertexSet};
use dsd::motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iteration knob: `DSD_PROP_ITERS` overrides, `default` otherwise.
fn prop_iters(default: usize) -> usize {
    std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn random_graph(rng: &mut StdRng, n_lo: usize, n_hi: usize) -> Graph {
    let n = rng.gen_range(n_lo..=n_hi);
    let p = rng.gen_range(0.08f64..0.35);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// The Ψ menu with each pattern's pre-substrate streaming oracle.
fn oracle_pairs() -> Vec<(Pattern, Box<dyn DensityOracle>)> {
    vec![
        (Pattern::edge(), Box::new(CliqueOracle::new(2))),
        (Pattern::triangle(), Box::new(CliqueOracle::new(3))),
        (Pattern::clique(4), Box::new(CliqueOracle::new(4))),
        (Pattern::two_star(), Box::new(StarOracle::new(2))),
        (Pattern::diamond(), Box::new(DiamondOracle)),
        (
            Pattern::two_triangle(),
            Box::new(GenericPatternOracle::new(&Pattern::two_triangle())),
        ),
        (
            Pattern::c3_star(),
            Box::new(GenericPatternOracle::new(&Pattern::c3_star())),
        ),
    ]
}

/// Degrees, counts, and decrement streams agree between the materialized
/// oracle and each pattern's streaming implementation, on full and
/// partially peeled alive sets.
#[test]
fn materialized_matches_streaming_degrees_and_decrements() {
    let iters = prop_iters(25);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0xD5D0 + seed);
        let g = random_graph(&mut rng, 12, 28);
        for (psi, streaming) in oracle_pairs() {
            // Exercise both serial and sharded clique store builds.
            let threads = if seed % 2 == 0 { 1 } else { 3 };
            let mat = MaterializedOracle::with_policy(&psi, Parallelism::new(threads), None);
            let mut alive = VertexSet::full(g.num_vertices());
            loop {
                assert_eq!(
                    mat.degrees(&g, &alive),
                    streaming.degrees(&g, &alive),
                    "degrees: seed {seed} psi {}",
                    psi.name()
                );
                assert_eq!(
                    mat.count(&g, &alive),
                    streaming.count(&g, &alive),
                    "count: seed {seed} psi {}",
                    psi.name()
                );
                if alive.len() <= g.num_vertices() / 2 {
                    break;
                }
                let members = alive.to_vec();
                let victim = members[rng.gen_range(0..members.len())];
                assert_eq!(
                    mat.removal_decrements(&g, &alive, victim),
                    streaming.removal_decrements(&g, &alive, victim),
                    "decrements: seed {seed} psi {} victim {victim}",
                    psi.name()
                );
                alive.remove(victim);
            }
        }
    }
}

/// Full decompositions — core numbers, kmax, peel order, μ, ρ′ — and the
/// approximation results derived from them are bit-identical across the
/// store-backed peeler and the streaming decrement path.
#[test]
fn materialized_matches_streaming_decomposition_and_apps() {
    let iters = prop_iters(20);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DE + seed);
        let g = random_graph(&mut rng, 14, 30);
        for (psi, streaming) in oracle_pairs() {
            let mat = MaterializedOracle::with_policy(&psi, Parallelism::serial(), None);
            let a = decompose(&g, &mat);
            let b = decompose(&g, streaming.as_ref());
            let label = format!("seed {seed} psi {}", psi.name());
            assert_eq!(a.core, b.core, "core numbers: {label}");
            assert_eq!(a.kmax, b.kmax, "kmax: {label}");
            assert_eq!(a.peel_order, b.peel_order, "peel order: {label}");
            assert_eq!(a.degrees, b.degrees, "initial degrees: {label}");
            assert_eq!(a.mu, b.mu, "mu: {label}");
            assert_eq!(
                a.best_density.to_bits(),
                b.best_density.to_bits(),
                "rho': {label}"
            );

            // PeelApp is a projection of the decomposition.
            let pa = peel_app_from(&a);
            let pb = peel_app_from(&b);
            assert_eq!(pa.vertices, pb.vertices, "PeelApp: {label}");
            assert_eq!(
                pa.density.to_bits(),
                pb.density.to_bits(),
                "PeelApp: {label}"
            );

            // IncApp reads the max core and re-measures density.
            let ia = inc_app_from(&g, &mat, &a);
            let ib = inc_app_from(&g, streaming.as_ref(), &b);
            assert_eq!(ia.result.vertices, ib.result.vertices, "IncApp: {label}");
            assert_eq!(
                ia.result.density.to_bits(),
                ib.result.density.to_bits(),
                "IncApp: {label}"
            );

            // CoreApp's top-down scan issues masked degree queries.
            let ca = dsd::core::core_app_from(
                &g,
                &psi,
                &mat,
                dsd::core::approx::CORE_APP_DEFAULT_SEED,
                None,
            );
            let cb = dsd::core::core_app_from(
                &g,
                &psi,
                streaming.as_ref(),
                dsd::core::approx::CORE_APP_DEFAULT_SEED,
                None,
            );
            assert_eq!(ca.result.vertices, cb.result.vertices, "CoreApp: {label}");
            assert_eq!(
                ca.result.density.to_bits(),
                cb.result.density.to_bits(),
                "CoreApp: {label}"
            );
        }
    }
}

/// A zero byte budget forces every request onto the streaming fallback;
/// answers must not change — only the `store` stats do.
#[test]
fn budget_fallback_changes_no_engine_answer() {
    let iters = prop_iters(10);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0xB4D6 + seed);
        let g = random_graph(&mut rng, 14, 24);
        let materialized = DsdEngine::over(&g);
        let capped = DsdEngine::over(&g).with_substrate_budget(Some(0));
        for psi in [Pattern::triangle(), Pattern::two_triangle()] {
            for objective in [
                Objective::Densest,
                Objective::TopK(2),
                Objective::AtLeastK(4),
                Objective::AtMostK(6),
            ] {
                for method in [Method::CoreExact, Method::PeelApp, Method::IncApp] {
                    let a = materialized
                        .request(&psi)
                        .objective(objective.clone())
                        .method(method)
                        .solve();
                    let b = capped
                        .request(&psi)
                        .objective(objective.clone())
                        .method(method)
                        .solve();
                    let label = format!("seed {seed} psi {} {objective:?} {method:?}", psi.name());
                    assert_eq!(a.vertices, b.vertices, "{label}");
                    assert_eq!(a.density.to_bits(), b.density.to_bits(), "{label}");
                    assert_eq!(a.outcome, b.outcome, "{label}");
                }
            }
        }
        // The capped engine reports its fallback.
        let s = capped
            .request(&Pattern::triangle())
            .method(Method::PeelApp)
            .solve();
        let store = s.stats.store.expect("store-capable oracle");
        assert!(!store.materialized);
        assert_eq!(store.fallback, Some(StoreFallback::Budget));
        let s = materialized
            .request(&Pattern::triangle())
            .method(Method::PeelApp)
            .solve();
        assert!(s.stats.store.expect("store-capable oracle").materialized);
    }
}

/// Satellite regression: `DsdEngine::apply` must never serve a stale
/// store. The epoch bump *repairs* the warm Ψ-substrates in place (no
/// wholesale drop), and the repaired stores answer exactly like a cold
/// engine over the updated graph.
#[test]
fn updates_never_serve_a_stale_store() {
    let iters = prop_iters(15);
    for seed in 0..iters as u64 {
        let mut rng = StdRng::seed_from_u64(0x57A1E + seed);
        let g = random_graph(&mut rng, 14, 24);
        let engine = DsdEngine::new(g.clone());
        let patterns = [Pattern::triangle(), Pattern::two_triangle()];

        // Warm materialized substrates at epoch 0.
        for psi in &patterns {
            let s = engine.request(psi).method(Method::PeelApp).solve();
            assert!(s.stats.store.expect("store-capable").materialized);
        }
        let resident = engine.substrate_bytes();
        assert!(resident > 0, "warm stores must be accounted");

        // Apply a random effective batch (keep drawing until one sticks).
        let mut updates;
        loop {
            let n = g.num_vertices() as u32;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            updates = vec![
                if rng.gen_bool(0.5) {
                    GraphUpdate::Insert(u, v)
                } else {
                    GraphUpdate::Delete(u, v)
                },
                GraphUpdate::Insert(0, 1),
            ];
            let stats = engine.apply(&updates);
            if stats.inserted + stats.deleted > 0 {
                assert_eq!(
                    stats.substrates_repaired,
                    patterns.len(),
                    "seed {seed}: both warm stores must be repaired in place"
                );
                assert_eq!(stats.substrates_rebuilt, 0, "seed {seed}");
                break;
            }
        }
        assert!(
            engine.substrate_bytes() > 0,
            "repaired stores stay resident across the epoch bump"
        );

        // Post-update answers match a cold engine over the updated graph.
        let updated = engine.graph();
        let cold = DsdEngine::new(Graph::from_edges(
            updated.num_vertices(),
            &updated.edges().collect::<Vec<_>>(),
        ));
        for psi in &patterns {
            for method in [Method::PeelApp, Method::CoreExact] {
                let warm = engine.request(psi).method(method).solve();
                let expect = cold.request(psi).method(method).solve();
                let label = format!("seed {seed} psi {} {method:?}", psi.name());
                assert_eq!(warm.vertices, expect.vertices, "{label}");
                assert_eq!(warm.density.to_bits(), expect.density.to_bits(), "{label}");
            }
        }
        assert!(
            engine.substrate_bytes() > 0,
            "repaired stores keep serving at the new epoch"
        );
    }
}

/// The sharded clique store build is worker-count invariant at the answer
/// level: every thread count yields the same degrees and decompositions.
#[test]
fn sharded_store_build_is_thread_invariant() {
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    let g = random_graph(&mut rng, 40, 60);
    let psi = Pattern::triangle();
    let reference = MaterializedOracle::with_policy(&psi, Parallelism::serial(), None);
    let alive = VertexSet::full(g.num_vertices());
    let ref_deg = reference.degrees(&g, &alive);
    let ref_dec = decompose(&g, &reference);
    for threads in [2usize, 3, 8] {
        let sharded = MaterializedOracle::with_policy(&psi, Parallelism::new(threads), None);
        assert_eq!(sharded.degrees(&g, &alive), ref_deg, "threads {threads}");
        let dec = decompose(&g, &sharded);
        assert_eq!(dec.core, ref_dec.core, "threads {threads}");
        assert_eq!(dec.peel_order, ref_dec.peel_order, "threads {threads}");
        assert_eq!(
            dec.best_density.to_bits(),
            ref_dec.best_density.to_bits(),
            "threads {threads}"
        );
    }
}
