//! Differential suite for enumeration invariance (ISSUE 9).
//!
//! The hardware-speed enumeration work swapped kernels and added
//! sharding underneath every Ψ-instance pass; this suite pins the
//! contract that none of it is observable:
//!
//! * the word-packed **bitset** kClist kernel and the sorted-**merge**
//!   kernel emit the same cliques in the same order, root by root;
//! * **sharded** general-pattern enumeration produces a store that is
//!   bit-identical to the serial build — same rows in the same order,
//!   same weights, same incidence CSR — for any worker count;
//! * end-to-end decompositions (core numbers, kmax, peel order, ρ′
//!   bits) agree across kernels, shard counts, and the streaming path;
//! * the engine's single-edge fast path (repair against the overlay
//!   view, CSR merge deferred) answers bit-identically to a cold
//!   rebuild.
//!
//! Kernel and shard selection use the explicit constructors
//! ([`CliqueLister::with_bitset`], the `threads` argument of
//! [`InstanceStore::pattern`]) rather than the `DSD_NO_BITSET` /
//! `DSD_ENUM_SHARDS` env toggles: tests in one binary run concurrently
//! and env vars are process-global.
//!
//! Iteration counts honour `DSD_PROP_ITERS` like `tests/dynamic.rs`;
//! nightly CI runs this suite at 5000 iterations.

use std::collections::BTreeSet;

use dsd::core::oracle::{CliqueOracle, GenericPatternOracle};
use dsd::core::{
    decompose, CliqueCoreDecomposition, DensityOracle, DsdEngine, DsdRequest, MaterializedOracle,
    Method, Parallelism, Solution,
};
use dsd::graph::{Graph, GraphUpdate, VertexId, VertexSet};
use dsd::motif::kclist::{CliqueLister, CliqueScratch};
use dsd::motif::store::InstanceStore;
use dsd::motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iteration knob: `DSD_PROP_ITERS` overrides, `default` otherwise.
fn prop_iters(default: usize) -> usize {
    std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// G(n, p) with the given bounds — dense enough settings push roots past
/// the bitset crossover, sparse ones stay on the merge kernel.
fn random_graph(rng: &mut StdRng, n_lo: usize, n_hi: usize, p_lo: f64, p_hi: f64) -> Graph {
    let n = rng.gen_range(n_lo..=n_hi);
    let p = rng.gen_range(p_lo..p_hi);
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Every h-clique of `g` through the chosen kernel, in emission order
/// (roots ascending, members in rank order within each root).
fn cliques_with_kernel(g: &Graph, h: usize, bitset: bool) -> Vec<Vec<VertexId>> {
    let alive = VertexSet::full(g.num_vertices());
    let lister = CliqueLister::with_bitset(g, h, &alive, bitset);
    let mut scratch = CliqueScratch::default();
    let mut out = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        lister.for_each_rooted_until(v, &mut scratch, &mut |c| {
            out.push(c.to_vec());
            true
        });
    }
    out
}

/// Row-order fingerprint of a store: members per row, weights, the
/// incidence CSR, and the total instance count.
type StoreFingerprint = (Vec<Vec<VertexId>>, Vec<u64>, Vec<Vec<u32>>, u64);

/// Everything the peel loop reads from a store, in row order.
fn store_fingerprint(s: &InstanceStore) -> StoreFingerprint {
    let rows: Vec<Vec<VertexId>> = (0..s.rows()).map(|r| s.members(r).to_vec()).collect();
    let weights: Vec<u64> = (0..s.rows()).map(|r| s.weight(r)).collect();
    let n = rows
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(0, |v| v as usize + 1);
    let incidence: Vec<Vec<u32>> = (0..n as VertexId)
        .map(|v| s.incidence(v).to_vec())
        .collect();
    (rows, weights, incidence, s.total_instances())
}

fn assert_decompositions_identical(
    ctx: &str,
    a: &CliqueCoreDecomposition,
    b: &CliqueCoreDecomposition,
) {
    assert_eq!(a.core, b.core, "core numbers: {ctx}");
    assert_eq!(a.kmax, b.kmax, "kmax: {ctx}");
    assert_eq!(a.peel_order, b.peel_order, "peel order: {ctx}");
    assert_eq!(
        a.best_density.to_bits(),
        b.best_density.to_bits(),
        "rho' bits: {ctx}"
    );
}

fn assert_solutions_identical(ctx: &str, warm: &Solution, cold: &Solution) {
    assert_eq!(warm.vertices, cold.vertices, "vertices: {ctx}");
    assert_eq!(
        warm.density.to_bits(),
        cold.density.to_bits(),
        "density bits: {ctx}"
    );
}

/// Bitset and merge kernels must emit identical cliques in identical
/// order — per root, across sparse and crossover-dense graphs.
#[test]
fn bitset_and_merge_kernels_emit_identical_cliques() {
    let iters = prop_iters(8);
    let mut rng = StdRng::seed_from_u64(0x15E9_0001);
    for iter in 0..iters {
        // Alternate sparse (merge-only) and dense (bitset fires past the
        // 64-neighbour crossover) shapes so both kernels and the
        // per-root dispatch boundary are exercised.
        let g = if iter % 2 == 0 {
            random_graph(&mut rng, 30, 60, 0.05, 0.2)
        } else {
            random_graph(&mut rng, 130, 170, 0.45, 0.6)
        };
        for h in [3usize, 4, 5] {
            let merge = cliques_with_kernel(&g, h, false);
            let bitset = cliques_with_kernel(&g, h, true);
            assert_eq!(
                merge,
                bitset,
                "iter {iter}, h = {h}: kernels diverged (n = {})",
                g.num_vertices()
            );
        }
    }
}

/// Sharded general-pattern stores must be bit-identical to the serial
/// build for every worker count — rows, order, weights, incidence.
#[test]
fn sharded_pattern_store_matches_serial_bitwise() {
    let iters = prop_iters(6);
    let mut rng = StdRng::seed_from_u64(0x15E9_0002);
    for iter in 0..iters {
        let g = random_graph(&mut rng, 14, 24, 0.25, 0.45);
        let alive = VertexSet::full(g.num_vertices());
        for psi in [Pattern::c3_star(), Pattern::diamond()] {
            let (serial, _) = InstanceStore::pattern(&g, &psi, &alive, 1, None)
                .expect("serial pattern build fits the default budget");
            let reference = store_fingerprint(&serial);
            for threads in [2usize, 3, 8] {
                let (sharded, stats) = InstanceStore::pattern(&g, &psi, &alive, threads, None)
                    .expect("sharded pattern build fits the default budget");
                assert_eq!(
                    store_fingerprint(&sharded),
                    reference,
                    "iter {iter}, psi = {}, threads = {threads}: store diverged",
                    psi.name()
                );
                assert!(
                    stats.shards >= 1,
                    "build reports its shard count (got {})",
                    stats.shards
                );
            }
        }
    }
}

/// Full decompositions agree across kernels, shard counts, and the
/// streaming reference, for clique and general Ψ alike.
#[test]
fn decompositions_invariant_across_enumeration_paths() {
    let iters = prop_iters(4);
    let mut rng = StdRng::seed_from_u64(0x15E9_0003);
    for iter in 0..iters {
        let g = random_graph(&mut rng, 20, 40, 0.2, 0.4);
        for h in [3usize, 4] {
            let psi = Pattern::clique(h);
            let streaming = decompose(&g, &CliqueOracle::new(h));
            for threads in [1usize, 4] {
                let oracle = MaterializedOracle::with_policy(&psi, Parallelism::new(threads), None);
                let dec = decompose(&g, &oracle);
                assert_decompositions_identical(
                    &format!("iter {iter}, h = {h}, threads = {threads}"),
                    &dec,
                    &streaming,
                );
                assert!(
                    oracle.store_stats().expect("store consulted").materialized,
                    "clique store materializes at this scale"
                );
            }
        }
        let psi = Pattern::c3_star();
        let streaming = decompose(&g, &GenericPatternOracle::new(&psi));
        for threads in [1usize, 4] {
            let oracle = MaterializedOracle::with_policy(&psi, Parallelism::new(threads), None);
            let dec = decompose(&g, &oracle);
            assert_decompositions_identical(
                &format!("iter {iter}, c3-star, threads = {threads}"),
                &dec,
                &streaming,
            );
        }
    }
}

/// The engine's single-edge fast path: repairs against the overlay view
/// with the CSR merge deferred, stays bit-identical to a cold rebuild
/// across chained single-edge batches, and a following multi-edge batch
/// (which forces the wholesale path) still answers correctly.
#[test]
fn single_edge_fast_path_defers_csr_and_stays_bit_identical() {
    let iters = prop_iters(4);
    let mut rng = StdRng::seed_from_u64(0x15E9_0004);
    for iter in 0..iters {
        let n = rng.gen_range(12usize..=18);
        let mut edges: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                if rng.gen_bool(0.3) {
                    edges.insert((u, v));
                }
            }
        }
        let base: Vec<_> = edges.iter().copied().collect();
        let engine = DsdEngine::new(Graph::from_edges(n, &base));
        let psi = Pattern::triangle();
        let req = DsdRequest::new(&psi).method(Method::CoreExact);
        engine.solve(&req); // warm the Ψ-substrate cache

        // Chained single-edge batches: every one must take the fast path.
        let mut deferred = 0usize;
        for round in 0..3 {
            let update = loop {
                let u = rng.gen_range(0u32..n as u32);
                let v = rng.gen_range(0u32..n as u32);
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if round % 2 == 0 {
                    if edges.insert(key) {
                        break GraphUpdate::Insert(key.0, key.1);
                    }
                } else if edges.remove(&key) {
                    break GraphUpdate::Delete(key.0, key.1);
                }
            };
            let stats = engine.apply(&[update]);
            assert!(
                stats.csr_deferred,
                "iter {iter}, round {round}: single-edge batch must defer the CSR merge"
            );
            deferred += 1;

            let now: Vec<_> = edges.iter().copied().collect();
            let cold = DsdEngine::new(Graph::from_edges(n, &now));
            assert_solutions_identical(
                &format!("iter {iter}, round {round}"),
                &engine.solve(&req),
                &cold.solve(&req),
            );
        }
        assert_eq!(deferred, 3);

        // A small mixed multi-edge batch also rides the delta-view fast
        // path now (deletes replayed first, then inserts against prefix
        // views) and must still agree with a cold engine bit for bit.
        let mut batch = Vec::new();
        for step in 0..4 {
            let u = rng.gen_range(0u32..n as u32);
            let v = rng.gen_range(0u32..n as u32);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if step == 0 {
                // Bias one delete into the batch when possible.
                if edges.remove(&key) {
                    batch.push(GraphUpdate::Delete(key.0, key.1));
                    continue;
                }
            }
            if edges.insert(key) {
                batch.push(GraphUpdate::Insert(key.0, key.1));
            }
        }
        if batch.len() >= 2 {
            let stats = engine.apply(&batch);
            assert!(
                stats.csr_deferred,
                "iter {iter}: small multi-edge batch must defer the CSR merge"
            );
            let now: Vec<_> = edges.iter().copied().collect();
            let cold = DsdEngine::new(Graph::from_edges(n, &now));
            assert_solutions_identical(
                &format!("iter {iter}, multi-edge"),
                &engine.solve(&req),
                &cold.solve(&req),
            );
        }
    }
}
