//! Engine-level tests: warm-vs-cold bit-identical answers for every
//! objective, the `Method::Auto` approximation-guarantee property, cache
//! accounting, and the repeated-query substrate-reuse speedup.

use dsd::core::{core_exact, peel_app, DsdEngine, Guarantee, Method, Objective, Outcome, Solution};
use dsd::datasets::chung_lu;
use dsd::graph::testing::XorShift;
use dsd::graph::Graph;
use dsd::motif::Pattern;

/// A graph with enough structure that every objective has a non-trivial
/// answer: K6 + triangle fringe + chain.
fn structured() -> Graph {
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            edges.push((u, v));
        }
    }
    edges.extend_from_slice(&[(6, 7), (7, 8), (6, 8), (8, 0), (9, 10), (10, 11), (11, 9)]);
    edges.extend_from_slice(&[(11, 12), (12, 13)]);
    Graph::from_edges(14, &edges)
}

fn assert_identical(a: &Solution, b: &Solution, label: &str) {
    assert_eq!(a.vertices, b.vertices, "{label}: vertices differ");
    assert_eq!(
        a.density.to_bits(),
        b.density.to_bits(),
        "{label}: density not bit-identical"
    );
    assert_eq!(
        a.subgraphs.len(),
        b.subgraphs.len(),
        "{label}: subgraph count"
    );
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        assert_eq!(x.vertices, y.vertices, "{label}: subgraph vertices");
        assert_eq!(
            x.density.to_bits(),
            y.density.to_bits(),
            "{label}: subgraph density"
        );
    }
    assert_eq!(a.method, b.method, "{label}: resolved method");
    assert_eq!(a.outcome, b.outcome, "{label}: outcome");
}

/// Every objective returns bit-identical `Solution`s from a cold engine, a
/// warm engine, and a second warm repetition.
#[test]
fn warm_and_cold_solutions_are_bit_identical_for_every_objective() {
    let g = structured();
    let psi = Pattern::triangle();
    let objectives = [
        Objective::Densest,
        Objective::TopK(3),
        Objective::AtLeastK(8),
        Objective::AtMostK(4),
        Objective::WithQuery(vec![9]),
    ];
    for objective in objectives {
        let cold_engine = DsdEngine::over(&g);
        let cold = cold_engine
            .request(&psi)
            .objective(objective.clone())
            .solve();

        let warm_engine = DsdEngine::over(&g);
        warm_engine.warm(&psi);
        let first = warm_engine
            .request(&psi)
            .objective(objective.clone())
            .solve();
        let second = warm_engine
            .request(&psi)
            .objective(objective.clone())
            .solve();

        let label = format!("{objective:?}");
        assert_identical(&cold, &first, &label);
        assert_identical(&first, &second, &label);
        // The warm runs really did come from the cache.
        if !matches!(objective, Objective::WithQuery(_)) {
            assert!(
                first.stats.substrate.decomposition_cache_hit,
                "{label}: expected warm decomposition"
            );
        }
    }
}

/// Every method path (including Auto, cold and warm) returns the unified
/// `Solution` with populated stats.
#[test]
fn every_method_returns_populated_solution() {
    let g = structured();
    let psi = Pattern::triangle();
    let engine = DsdEngine::over(&g);
    for method in [
        Method::Auto,
        Method::Exact,
        Method::CoreExact,
        Method::PeelApp,
        Method::IncApp,
        Method::CoreApp,
        Method::Auto, // warm Auto resolves against the now-cached substrates
    ] {
        let s = engine.request(&psi).method(method).solve();
        assert_ne!(
            s.method,
            Method::Auto,
            "solution must carry the resolved method"
        );
        assert_eq!(s.outcome, Outcome::Found, "{method:?}");
        assert!(s.density > 0.0, "{method:?}");
        assert!(
            s.stats.total_nanos > 0,
            "{method:?}: stats must be populated"
        );
        assert_eq!(s.subgraphs.len(), 1, "{method:?}");
        // Exact methods certify; approximations carry the 1/|VΨ| ratio.
        match s.method {
            Method::Exact | Method::CoreExact => assert_eq!(s.guarantee, Guarantee::Exact),
            _ => assert_eq!(s.guarantee, Guarantee::Ratio(1.0 / 3.0)),
        }
    }
}

/// Property: `Method::Auto` never violates the 1/|VΨ| approximation
/// guarantee, cold or warm, on arbitrary graphs and patterns.
#[test]
fn auto_method_respects_approximation_guarantee() {
    let mut rng = XorShift::new(0xA070);
    for _ in 0..40 {
        let g = rng.random_graph(3, 11, 40);
        for psi in [Pattern::edge(), Pattern::triangle(), Pattern::diamond()] {
            let (opt, _) = core_exact(&g, &psi);
            let floor = opt.density / psi.vertex_count() as f64 - 1e-9;
            let engine = DsdEngine::over(&g);
            let cold = engine.request(&psi).solve();
            assert!(
                cold.density >= floor && cold.density <= opt.density + 1e-9,
                "cold Auto broke the guarantee on {}: {} vs opt {}",
                psi.name(),
                cold.density,
                opt.density
            );
            let warm = engine.request(&psi).solve();
            assert!(
                warm.density >= floor && warm.density <= opt.density + 1e-9,
                "warm Auto broke the guarantee on {}: {} vs opt {}",
                psi.name(),
                warm.density,
                opt.density
            );
        }
    }
}

/// The engine's cache accounting matches the request history.
#[test]
fn cache_stats_track_builds_and_hits() {
    let g = structured();
    let engine = DsdEngine::over(&g);
    let tri = Pattern::triangle();
    let edge = Pattern::edge();

    engine.request(&tri).method(Method::CoreExact).solve();
    engine.request(&tri).method(Method::PeelApp).solve();
    engine.request(&edge).method(Method::CoreExact).solve();
    engine.request(&tri).objective(Objective::TopK(2)).solve();

    let stats = engine.cache_stats();
    assert_eq!(stats.decomposition_builds, 2, "one per distinct Ψ");
    assert_eq!(stats.decomposition_hits, 2, "two warm triangle requests");
    assert_eq!(stats.oracle_builds, 2);
}

/// Tolerance and step-budget knobs degrade the guarantee, never the
/// subgraph's validity.
#[test]
fn tolerance_and_budget_knobs() {
    let g = structured();
    let psi = Pattern::edge();
    let engine = DsdEngine::over(&g);
    let exact = engine.request(&psi).method(Method::CoreExact).solve();

    let tol = engine
        .request(&psi)
        .method(Method::CoreExact)
        .tolerance(0.25)
        .solve();
    assert_eq!(tol.guarantee, Guarantee::AdditiveGap(0.25));
    assert!(tol.density >= exact.density - 0.25 - 1e-9);
    assert!(tol.density <= exact.density + 1e-9);

    let budgeted = engine
        .request(&psi)
        .method(Method::CoreExact)
        .step_budget(1)
        .solve();
    // One probe cannot certify optimality, but the answer is still a real
    // subgraph no denser than the optimum.
    assert!(budgeted.density <= exact.density + 1e-9);
    assert!(budgeted.density > 0.0);
}

/// The ISSUE-1 acceptance shape at test scale: 10 same-Ψ requests against
/// one engine vs 10 cold free-function calls (all-peel workload, where
/// substrate reuse is the entire cost). This test asserts the *mechanism*
/// — one substrate build, nine cache hits, bit-identical answers. The hard
/// ≥ 2× wall-clock assertion lives in `benches/engine_reuse.rs`, which CI
/// runs as its own step on an otherwise idle process; asserting wall-clock
/// here would flake under libtest's parallel scheduling.
#[test]
fn repeated_queries_reuse_substrates_for_speedup() {
    let g = chung_lu::chung_lu(2_500, 10_000, 2.4, 7);
    let psi = Pattern::triangle();

    let mut cold_sum = 0.0;
    for _ in 0..10 {
        cold_sum += peel_app(&g, &psi).density;
    }

    let engine = DsdEngine::over(&g);
    let mut warm_sum = 0.0;
    let mut warm_decomposition_nanos = 0u128;
    for _ in 0..10 {
        let s = engine.request(&psi).method(Method::PeelApp).solve();
        warm_sum += s.density;
        warm_decomposition_nanos += s.stats.decomposition_nanos;
    }

    assert_eq!(cold_sum.to_bits(), warm_sum.to_bits(), "answers must match");
    assert_eq!(engine.cache_stats().decomposition_builds, 1);
    assert_eq!(engine.cache_stats().decomposition_hits, 9);
    // Only the first request paid decomposition time; the nine warm ones
    // report 0 — the cost structure the ≥ 2× bench speedup comes from.
    let first = engine.warm(&psi); // cache hit → 0
    assert_eq!(first, 0);
    let s = engine.request(&psi).method(Method::PeelApp).solve();
    assert!(s.stats.substrate.decomposition_cache_hit);
    assert_eq!(s.stats.decomposition_nanos, 0);
    assert!(warm_decomposition_nanos > 0, "first request pays the build");
}

/// Invalid requests come back as `Outcome::Invalid`, not panics.
#[test]
fn invalid_requests_are_reported() {
    let g = structured();
    let engine = DsdEngine::over(&g);
    let psi = Pattern::triangle();
    for objective in [
        Objective::TopK(0),
        Objective::AtLeastK(0),
        Objective::AtLeastK(1_000),
        Objective::AtMostK(0),
        Objective::WithQuery(vec![99]),
        Objective::WithQuery(vec![]),
    ] {
        let s = engine.request(&psi).objective(objective.clone()).solve();
        assert_eq!(s.outcome, Outcome::Invalid, "{objective:?}");
        assert!(s.is_empty());
        assert_ne!(
            s.guarantee,
            Guarantee::Exact,
            "{objective:?}: invalid answers must not carry a certificate"
        );
    }
    // Invalid requests are rejected before any substrate is built.
    assert_eq!(engine.cache_stats().decomposition_builds, 0);
    assert_eq!(engine.cache_stats().kcore_builds, 0);
}

/// An owning engine behaves like a borrowing one.
#[test]
fn owned_and_borrowed_engines_agree() {
    let g = structured();
    let borrowed = DsdEngine::over(&g);
    let owned = DsdEngine::new(g.clone());
    let psi = Pattern::triangle();
    let a = borrowed.request(&psi).method(Method::CoreExact).solve();
    let b = owned.request(&psi).method(Method::CoreExact).solve();
    assert_eq!(a.vertices, b.vertices);
    assert_eq!(a.density.to_bits(), b.density.to_bits());
}
