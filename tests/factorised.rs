//! Differential suite for factorised flow construction (ISSUE 10).
//!
//! The factorised path builds `construct+`-shaped density networks
//! straight from `InstanceStore` columns ([`build_store_network`]) and
//! caches them on the engine keyed by (canonical Ψ, member set, epoch).
//! This suite pins the contract that none of it is observable in
//! answers:
//!
//! * a store-built network is **structurally identical**
//!   ([`DensityNetwork::structure_fingerprint`]) to the grouped
//!   enumeration build over the same subgraph, and double builds of
//!   either are deterministic;
//! * identically-shaped networks agree **bit for bit** on every probe:
//!   same min-cut side, same cut value, for both flow backends;
//! * engine solves through store-built networks match streaming
//!   (enumeration-built) solves — decision, witness, density bits —
//!   across edge/clique/star/diamond/general Ψ, both backends, and the
//!   exact / core-exact / top-k / query paths;
//! * repeat solves are served from the **network cache** (hits counted,
//!   zero store rebuilds) and stay bit-identical;
//! * an effective update **invalidates** cached networks (epoch bump):
//!   the next solve rebuilds cold and matches a fresh engine.
//!
//! Iteration counts honour `DSD_PROP_ITERS` like `tests/dynamic.rs`;
//! nightly CI runs this suite at 5000 iterations.

use dsd::core::flownet::{build_pattern_network, build_store_network, DensityNetwork, FlowBackend};
use dsd::core::{DsdEngine, Method, Objective, Solution};
use dsd::graph::{Graph, GraphUpdate, VertexId, VertexSet};
use dsd::motif::store::InstanceStore;
use dsd::motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iteration knob: `DSD_PROP_ITERS` overrides, `default` otherwise.
fn prop_iters(default: usize) -> usize {
    std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn random_graph(rng: &mut StdRng, n_lo: usize, n_hi: usize, p_lo: f64, p_hi: f64) -> Graph {
    let n = rng.gen_range(n_lo..=n_hi);
    let p = rng.gen_range(p_lo..p_hi);
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// The Ψ sweep the ISSUE asks for: edge, cliques, star, diamond, general.
fn patterns() -> Vec<Pattern> {
    vec![
        Pattern::edge(),
        Pattern::triangle(),
        Pattern::clique(4),
        Pattern::two_star(),
        Pattern::diamond(),
        Pattern::c3_star(), // general Ψ (the paw)
    ]
}

/// Builds the Ψ-instance store of `g`, skipping pattern/graph pairs the
/// store cannot hold (never happens at these sizes, but keep it total).
fn store_for(g: &Graph, psi: &Pattern) -> Option<InstanceStore> {
    let alive = VertexSet::full(g.num_vertices());
    let built = match psi.vertex_count() * (psi.vertex_count() - 1) == 2 * psi.edge_count() {
        true => InstanceStore::cliques(g, psi.vertex_count(), &alive, 1, None),
        false => InstanceStore::pattern(g, psi, &alive, 1, None),
    };
    built.ok().map(|(store, _)| store)
}

fn assert_solutions_identical(ctx: &str, a: &Solution, b: &Solution) {
    assert_eq!(a.vertices, b.vertices, "vertices: {ctx}");
    assert_eq!(
        a.density.to_bits(),
        b.density.to_bits(),
        "density bits: {ctx}"
    );
    for (i, (sa, sb)) in a.subgraphs.iter().zip(&b.subgraphs).enumerate() {
        assert_eq!(sa.vertices, sb.vertices, "subgraph #{i} vertices: {ctx}");
        assert_eq!(
            sa.density.to_bits(),
            sb.density.to_bits(),
            "subgraph #{i} density bits: {ctx}"
        );
    }
    assert_eq!(
        a.subgraphs.len(),
        b.subgraphs.len(),
        "subgraph count: {ctx}"
    );
}

/// Store-built networks are structurally identical to the grouped
/// enumeration build, and both builds are deterministic (double-build
/// fingerprints equal) — the node-id/order canonicalization contract.
#[test]
fn store_network_matches_grouped_enumeration_structure() {
    let iters = prop_iters(4);
    let mut rng = StdRng::seed_from_u64(0xFAC7_0001);
    for iter in 0..iters {
        let g = random_graph(&mut rng, 8, 14, 0.3, 0.6);
        let all: Vec<VertexId> = g.vertices().collect();
        for psi in patterns() {
            let Some(store) = store_for(&g, &psi) else {
                continue;
            };
            let from_store = build_store_network(&g, &all, &store);
            let from_enum = build_pattern_network(&g, &all, &psi, true);
            assert_eq!(
                from_store.structure_fingerprint(),
                from_enum.structure_fingerprint(),
                "iter {iter}, psi {}: store build must mirror grouped enumeration",
                psi.name()
            );
            let again = build_store_network(&g, &all, &store);
            assert_eq!(
                from_store.structure_fingerprint(),
                again.structure_fingerprint(),
                "iter {iter}, psi {}: store build must be deterministic",
                psi.name()
            );
            let enum_again = build_pattern_network(&g, &all, &psi, true);
            assert_eq!(
                from_enum.structure_fingerprint(),
                enum_again.structure_fingerprint(),
                "iter {iter}, psi {}: grouped enumeration must be deterministic",
                psi.name()
            );
        }
    }
}

/// Identically-shaped networks answer every probe bit-for-bit: the same
/// ascending α ladder yields the same cut side and the same cut value,
/// on both backends.
#[test]
fn store_and_enumeration_networks_agree_on_cuts() {
    let iters = prop_iters(4);
    let mut rng = StdRng::seed_from_u64(0xFAC7_0002);
    for iter in 0..iters {
        let g = random_graph(&mut rng, 8, 14, 0.3, 0.6);
        let all: Vec<VertexId> = g.vertices().collect();
        for psi in patterns() {
            let Some(store) = store_for(&g, &psi) else {
                continue;
            };
            for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
                let mut a: DensityNetwork = build_store_network(&g, &all, &store);
                let mut b = build_pattern_network(&g, &all, &psi, true);
                for alpha in [0.0, 0.25, 0.5, 1.0, 2.0] {
                    let sa = a.min_cut_side(alpha, backend);
                    let va = a.cut_value();
                    let sb = b.min_cut_side(alpha, backend);
                    let vb = b.cut_value();
                    assert_eq!(
                        sa,
                        sb,
                        "iter {iter}, psi {}, {backend:?}, alpha {alpha}: cut side",
                        psi.name()
                    );
                    assert_eq!(
                        va.to_bits(),
                        vb.to_bits(),
                        "iter {iter}, psi {}, {backend:?}, alpha {alpha}: cut value",
                        psi.name()
                    );
                }
            }
        }
    }
}

/// Engine solves through the factorised path (store-backed oracle →
/// store-built networks) match a streaming engine (substrate budget 0 →
/// enumeration-built networks) bit for bit, across Ψ × backend × method.
#[test]
fn store_backed_solves_match_streaming_enumeration() {
    let iters = prop_iters(3);
    let mut rng = StdRng::seed_from_u64(0xFAC7_0003);
    for iter in 0..iters {
        let g = random_graph(&mut rng, 9, 14, 0.3, 0.55);
        for psi in patterns() {
            let factorised = DsdEngine::new(g.clone());
            let streaming = DsdEngine::new(g.clone()).with_substrate_budget(Some(0));
            for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
                for method in [Method::Exact, Method::CoreExact] {
                    let ctx = format!("iter {iter}, psi {}, {backend:?}, {method:?}", psi.name());
                    let warm = factorised
                        .request(&psi)
                        .method(method)
                        .flow_backend(backend)
                        .solve();
                    let cold = streaming
                        .request(&psi)
                        .method(method)
                        .flow_backend(backend)
                        .solve();
                    assert_solutions_identical(&ctx, &warm, &cold);
                }
                let ctx = format!("iter {iter}, psi {}, {backend:?}, top-k", psi.name());
                let warm = factorised
                    .request(&psi)
                    .objective(Objective::TopK(2))
                    .method(Method::CoreExact)
                    .flow_backend(backend)
                    .solve();
                let cold = streaming
                    .request(&psi)
                    .objective(Objective::TopK(2))
                    .method(Method::CoreExact)
                    .flow_backend(backend)
                    .solve();
                assert_solutions_identical(&ctx, &warm, &cold);
            }
        }
    }
}

/// Repeat solves warm-resolve through the engine's network cache: hits
/// are counted, the store is never rebuilt, answers stay bit-identical.
/// Covers the exact, top-k, and pinned-query paths.
#[test]
fn warm_network_cache_serves_repeat_solves() {
    let iters = prop_iters(3);
    let mut rng = StdRng::seed_from_u64(0xFAC7_0004);
    for iter in 0..iters {
        let g = random_graph(&mut rng, 9, 14, 0.3, 0.55);
        let psi = Pattern::triangle();
        let engine = DsdEngine::new(g.clone());

        let first = engine.request(&psi).method(Method::Exact).solve();
        if first.vertices.is_empty() {
            // Triangle-free draw: no Ψ instance, no network to cache.
            continue;
        }
        let after_first = engine.cache_stats();
        assert!(
            after_first.network_misses >= 1,
            "iter {iter}: cold solve builds its network"
        );
        assert!(
            engine.network_bytes() > 0,
            "iter {iter}: solved network must be cached"
        );

        let second = engine.request(&psi).method(Method::Exact).solve();
        let after_second = engine.cache_stats();
        assert_solutions_identical(&format!("iter {iter}, repeat exact"), &first, &second);
        assert!(
            after_second.network_hits > after_first.network_hits,
            "iter {iter}: repeat solve must take the cached network"
        );
        assert_eq!(
            after_second.oracle_builds, 1,
            "iter {iter}: repeat solve must not re-enumerate instances"
        );

        // The pinned-query network caches under its own (members, Q) key.
        let q = vec![0 as VertexId];
        let qa = engine
            .request(&psi)
            .objective(Objective::WithQuery(q.clone()))
            .solve();
        let before_repeat = engine.cache_stats();
        let qb = engine
            .request(&psi)
            .objective(Objective::WithQuery(q))
            .solve();
        assert_solutions_identical(&format!("iter {iter}, repeat query"), &qa, &qb);
        assert!(
            engine.cache_stats().network_hits > before_repeat.network_hits,
            "iter {iter}: repeat query must take the cached pinned network"
        );
    }
}

/// Effective updates invalidate every cached network (the epoch key):
/// post-update solves rebuild cold — no stale hit — and match a fresh
/// engine over the updated graph bit for bit.
#[test]
fn epoch_bump_invalidates_cached_networks() {
    let iters = prop_iters(3);
    let mut rng = StdRng::seed_from_u64(0xFAC7_0005);
    for iter in 0..iters {
        let g = random_graph(&mut rng, 9, 13, 0.3, 0.5);
        let n = g.num_vertices() as VertexId;
        let psi = Pattern::triangle();
        let engine = DsdEngine::new(g.clone());
        if engine
            .request(&psi)
            .method(Method::Exact)
            .solve()
            .vertices
            .is_empty()
        {
            // Triangle-free draw: nothing cached, nothing to invalidate.
            continue;
        }
        assert!(engine.network_bytes() > 0);

        // One effective toggle: insert a missing edge (or delete if full).
        let (u, v) = {
            let mut pick = (0, 1);
            'outer: for u in 0..n {
                for v in (u + 1)..n {
                    if !g.has_edge(u, v) {
                        pick = (u, v);
                        break 'outer;
                    }
                }
            }
            pick
        };
        let update = if g.has_edge(u, v) {
            GraphUpdate::Delete(u, v)
        } else {
            GraphUpdate::Insert(u, v)
        };
        let st = engine.apply(&[update]);
        assert_eq!(st.inserted + st.deleted, 1, "iter {iter}: effective batch");
        assert_eq!(
            engine.network_bytes(),
            0,
            "iter {iter}: apply must clear cached networks"
        );

        let before = engine.cache_stats();
        let after_update = engine.request(&psi).method(Method::Exact).solve();
        let stats = engine.cache_stats();
        assert_eq!(
            stats.network_hits, before.network_hits,
            "iter {iter}: post-update solve must not hit a stale network"
        );
        assert!(
            stats.network_misses > before.network_misses,
            "iter {iter}: post-update solve rebuilds its network"
        );

        let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        match update {
            GraphUpdate::Insert(u, v) => edges.push((u, v)),
            GraphUpdate::Delete(u, v) => {
                edges.retain(|&(a, b)| (a.min(b), a.max(b)) != (u.min(v), u.max(v)))
            }
        }
        let cold = DsdEngine::new(Graph::from_edges(g.num_vertices(), &edges));
        let expect = cold.request(&psi).method(Method::Exact).solve();
        assert_solutions_identical(&format!("iter {iter}, post-update"), &after_update, &expect);
    }
}
