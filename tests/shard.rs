//! Sharded-graph subsystem tests: scatter-gather solves are bit-identical
//! to the single-engine path across random graphs, shard counts, and
//! objectives; update batches route to only the shards they touch (and
//! stay differential against a whole-graph apply); and the serve pipeline
//! answers through a sharded registration exactly as through a plain one,
//! with zero governor budget violations.
//!
//! Iteration counts honour the `DSD_PROP_ITERS` env knob (the nightly CI
//! job runs the suites with elevated counts).

use dsd::core::{
    DsdEngine, DsdRequest, DsdServer, Method, Objective, ServeConfig, ServeOutcome, ShardedGraph,
    Solution,
};
use dsd::graph::{Graph, GraphBuilder, GraphUpdate, VertexId};
use dsd::motif::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iteration knob: `DSD_PROP_ITERS` overrides, `default` otherwise.
fn prop_iters(default: usize) -> usize {
    std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A clustered random graph: a few dense-ish blocks with sparse bridges,
/// the shape sharding is for (uniform G(n, p) also passes, but exercises
/// the partitioner less).
fn clustered_graph(rng: &mut StdRng) -> Graph {
    let blocks = rng.gen_range(2..=4usize);
    let block = rng.gen_range(6..=10usize);
    let n = blocks * block;
    let mut b = GraphBuilder::new(n);
    for blk in 0..blocks {
        let base = blk * block;
        let p = rng.gen_range(0.35f64..0.85);
        for u in 0..block {
            for v in (u + 1)..block {
                if rng.gen_bool(p) {
                    b.add_edge((base + u) as VertexId, (base + v) as VertexId);
                }
            }
        }
    }
    for blk in 1..blocks {
        if rng.gen_bool(0.7) {
            let u = ((blk - 1) * block + rng.gen_range(0..block)) as VertexId;
            let v = (blk * block + rng.gen_range(0..block)) as VertexId;
            b.add_edge(u, v);
        }
    }
    b.build()
}

fn assert_bitwise_same(a: &Solution, b: &Solution, context: &str) {
    assert_eq!(a.vertices, b.vertices, "{context}: vertices");
    assert_eq!(
        a.density.to_bits(),
        b.density.to_bits(),
        "{context}: density {} vs {}",
        a.density,
        b.density
    );
    assert_eq!(a.subgraphs.len(), b.subgraphs.len(), "{context}: subgraphs");
    for (i, (sa, sb)) in a.subgraphs.iter().zip(&b.subgraphs).enumerate() {
        assert_eq!(sa.vertices, sb.vertices, "{context}: subgraph {i}");
        assert_eq!(
            sa.density.to_bits(),
            sb.density.to_bits(),
            "{context}: subgraph {i} density"
        );
    }
}

fn scatter_objectives(rng: &mut StdRng) -> Vec<(Objective, Method)> {
    vec![
        (Objective::Densest, Method::CoreExact),
        (Objective::Densest, Method::Auto),
        (Objective::TopK(rng.gen_range(2..=3)), Method::CoreExact),
        (Objective::AtLeastK(rng.gen_range(3..=6)), Method::CoreExact),
    ]
}

#[test]
fn sharded_solves_are_bit_identical_to_single_engine() {
    let mut rng = StdRng::seed_from_u64(0x5AADED);
    let patterns = [Pattern::edge(), Pattern::triangle(), Pattern::clique(4)];
    for round in 0..prop_iters(6) {
        let g = clustered_graph(&mut rng);
        let shards = rng.gen_range(2..=5usize);
        let sharded = ShardedGraph::new(g.clone(), shards);
        let engine = DsdEngine::new(g);
        let psi = &patterns[round % patterns.len()];
        for (objective, method) in scatter_objectives(&mut rng) {
            let req = DsdRequest::new(psi)
                .objective(objective.clone())
                .method(method);
            let got = sharded.solve(&req);
            let want = engine.solve(&req);
            assert_bitwise_same(
                &got,
                &want,
                &format!("round {round}, {shards} shards, {objective:?} via {method:?}"),
            );
        }
    }
}

#[test]
fn sharded_solves_stay_bit_identical_under_updates() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for round in 0..prop_iters(4) {
        let g = clustered_graph(&mut rng);
        let n = g.num_vertices() as VertexId;
        let shards = rng.gen_range(2..=4usize);
        let sharded = ShardedGraph::new(g.clone(), shards);
        let engine = DsdEngine::new(g);
        let psi = Pattern::triangle();
        for batch in 0..3 {
            let updates: Vec<GraphUpdate> = (0..rng.gen_range(1..=5usize))
                .map(|_| {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    let (u, v) = if u == v { (u, (v + 1) % n) } else { (u, v) };
                    if rng.gen_bool(0.5) {
                        GraphUpdate::Insert(u, v)
                    } else {
                        GraphUpdate::Delete(u, v)
                    }
                })
                .collect();
            // Differential: the routed per-shard apply must leave every
            // objective agreeing with a whole-graph apply.
            sharded.apply(&updates);
            engine.apply(&updates);
            let req = DsdRequest::new(&psi).method(Method::CoreExact);
            assert_bitwise_same(
                &sharded.solve(&req),
                &engine.solve(&req),
                &format!("round {round} batch {batch}"),
            );
        }
    }
}

#[test]
fn single_shard_batches_leave_sibling_epochs_alone() {
    let mut rng = StdRng::seed_from_u64(0xE9);
    for _ in 0..prop_iters(4) {
        let g = clustered_graph(&mut rng);
        let sharded = ShardedGraph::new(g.clone(), 3);
        if sharded.num_shards() < 2 {
            continue;
        }
        // An update strictly inside one shard's vertex set.
        let home = (0..sharded.num_shards())
            .find(|&i| sharded.shard_members(i).len() >= 2)
            .expect("some shard holds at least two vertices");
        let members = sharded.shard_members(home);
        let (u, v) = (members[0], members[1]);
        let before: Vec<u64> = (0..sharded.num_shards())
            .map(|i| sharded.shard_engine(i).epoch())
            .collect();
        // A net-noop batch cancels during normalization: the owning shard
        // is still the only one called, but nobody's epoch moves.
        let noop = if g.has_edge(u, v) {
            [GraphUpdate::Delete(u, v), GraphUpdate::Insert(u, v)]
        } else {
            [GraphUpdate::Insert(u, v), GraphUpdate::Delete(u, v)]
        };
        let stats = sharded.apply(&noop);
        assert_eq!(stats.shards_touched, 1);
        assert_eq!(stats.cross_shard, 0);
        for (i, epoch_before) in before.iter().enumerate() {
            assert_eq!(
                sharded.shard_engine(i).epoch(),
                *epoch_before,
                "net-noop batch bumped shard {i}"
            );
        }
        // A real single-edge toggle bumps the home shard alone.
        let real = if g.has_edge(u, v) {
            GraphUpdate::Delete(u, v)
        } else {
            GraphUpdate::Insert(u, v)
        };
        let stats = sharded.apply(&[real]);
        assert_eq!(stats.shards_touched, 1);
        for (i, epoch_before) in before.iter().enumerate() {
            if i == home {
                assert!(sharded.shard_engine(i).epoch() > *epoch_before);
            } else {
                assert_eq!(
                    sharded.shard_engine(i).epoch(),
                    *epoch_before,
                    "sibling shard {i} was touched"
                );
            }
        }
    }
}

#[test]
fn sharded_server_matches_plain_registration() {
    let mut rng = StdRng::seed_from_u64(0x5E4E);
    let server = DsdServer::new(ServeConfig {
        workers: 2,
        substrate_budget: Some(1 << 20),
        ..ServeConfig::default()
    });
    for round in 0..prop_iters(3) {
        let g = clustered_graph(&mut rng);
        let sharded = server.register_sharded("shard", g.clone(), 4);
        server.register("plain", g);
        assert!(server.sharded("shard").is_some());
        assert!(server.sharded("plain").is_none());
        let psi = Pattern::triangle();
        let mk = |name: &str, objective: Objective| {
            DsdRequest::new(&psi)
                .on(name)
                .objective(objective)
                .method(Method::CoreExact)
        };
        for objective in [
            Objective::Densest,
            Objective::TopK(2),
            Objective::AtLeastK(4),
        ] {
            let a = server.submit(mk("shard", objective.clone())).unwrap();
            let b = server.submit(mk("plain", objective.clone())).unwrap();
            let (a, b) = (a.wait().unwrap(), b.wait().unwrap());
            let (ServeOutcome::Solved(a), ServeOutcome::Solved(b)) = (a, b) else {
                panic!("queries returned non-solutions");
            };
            assert_bitwise_same(&a, &b, &format!("round {round}, {objective:?}"));
        }
        // Updates flow through the same logical queue and both paths
        // agree afterwards.
        let members = (0..sharded.num_shards())
            .map(|i| sharded.shard_members(i))
            .find(|m| m.len() >= 2)
            .expect("some shard holds at least two vertices")
            .to_vec();
        let updates = vec![GraphUpdate::Insert(members[0], members[1])];
        let ua = server.submit_update("shard", updates.clone()).unwrap();
        let ub = server.submit_update("plain", updates).unwrap();
        assert!(matches!(ua.wait().unwrap(), ServeOutcome::Updated(_)));
        assert!(matches!(ub.wait().unwrap(), ServeOutcome::Updated(_)));
        let a = server.submit(mk("shard", Objective::Densest)).unwrap();
        let b = server.submit(mk("plain", Objective::Densest)).unwrap();
        let (Ok(ServeOutcome::Solved(a)), Ok(ServeOutcome::Solved(b))) = (a.wait(), b.wait())
        else {
            panic!("post-update queries failed");
        };
        assert_bitwise_same(&a, &b, &format!("round {round} post-update"));
        server.drain();
        server.evict("shard");
        server.evict("plain");
        assert!(server.sharded("shard").is_none());
    }
    assert_eq!(server.stats().governor.violations, 0);
}

#[test]
fn sharded_registration_attaches_every_engine_to_the_governor() {
    let server = DsdServer::new(ServeConfig {
        workers: 0,
        substrate_budget: Some(1 << 20),
        ..ServeConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(7);
    let g = clustered_graph(&mut rng);
    let sharded = server.register_sharded("g", g, 4);
    let psi = Pattern::triangle();
    let ticket = server
        .submit(DsdRequest::new(&psi).on("g").method(Method::CoreExact))
        .unwrap();
    while server.step() {}
    assert!(matches!(ticket.wait(), Ok(ServeOutcome::Solved(_))));
    // The scatter warmed shard substrates; their bytes must be on the
    // governor's ledger (attached engines report through the observer).
    let resident: u64 = (0..sharded.num_shards())
        .map(|i| sharded.shard_engine(i).substrate_bytes())
        .sum::<u64>()
        + sharded.spine_engine().substrate_bytes();
    let stats = server.stats().governor;
    assert!(resident > 0, "scatter warmed nothing");
    assert_eq!(stats.resident_bytes, resident);
    assert_eq!(stats.violations, 0);
    drop(sharded);
    server.governor().debug_assert_reconciled();
}
