//! Parametric-resolve differential suite (ISSUE-4 satellite): after any
//! α-bump, a warm `DensityNetwork` probe — served by `resolve` from the
//! previous flow or by a checkpoint restore — must be **bit-identical**
//! to a from-scratch solve at the same α: same feasibility decision, same
//! witness set, and the same cut value (the capacity sum over the
//! residual-reachable cut, which is determined by the cut alone and so
//! must not depend on how the flow state was reached).
//!
//! Sweeps seeded random graphs × both backends × all three network
//! constructions (edge / clique / pattern, the pattern one in both its
//! grouped and ungrouped forms), driving each pair of networks through a
//! bisection-shaped α schedule (ups after feasible probes, downs after
//! infeasible ones — the downs are what exercise the checkpoint-restore
//! path). Honours `DSD_PROP_ITERS` for the nightly deep run.

use dsd::core::flownet::{
    build_clique_network, build_edge_network, build_pattern_network, DensityNetwork, FlowBackend,
};
use dsd::graph::testing::XorShift;
use dsd::graph::Graph;
use dsd::motif::Pattern;

fn iters() -> usize {
    std::env::var("DSD_PROP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: usize| (n / 10).max(8))
        .unwrap_or(24)
}

fn all(g: &Graph) -> Vec<u32> {
    g.vertices().collect()
}

/// Builds every (construction, instance) pair under test for `g`.
fn networks(g: &Graph) -> Vec<(String, DensityNetwork, DensityNetwork)> {
    let members = all(g);
    let mut out = Vec::new();
    let mut push = |name: &str, a: DensityNetwork, b: DensityNetwork| {
        out.push((name.to_string(), a, b));
    };
    push(
        "edge",
        build_edge_network(g, &members),
        build_edge_network(g, &members),
    );
    push(
        "clique3",
        build_clique_network(g, &members, 3),
        build_clique_network(g, &members, 3),
    );
    let diamond = Pattern::diamond();
    push(
        "pattern",
        build_pattern_network(g, &members, &diamond, false),
        build_pattern_network(g, &members, &diamond, false),
    );
    push(
        "pattern-grouped",
        build_pattern_network(g, &members, &diamond, true),
        build_pattern_network(g, &members, &diamond, true),
    );
    out
}

/// One differential probe: warm (parametric) vs cold (from-scratch).
fn check(
    label: &str,
    alpha: f64,
    warm: &mut DensityNetwork,
    cold: &mut DensityNetwork,
    backend: FlowBackend,
) -> bool {
    let w = warm.solve(alpha, backend);
    let c = cold.solve(alpha, backend);
    assert_eq!(
        w.is_some(),
        c.is_some(),
        "{label} α={alpha}: feasibility decision diverged"
    );
    if let (Some(mut wv), Some(mut cv)) = (w.clone(), c) {
        wv.sort_unstable();
        cv.sort_unstable();
        assert_eq!(wv, cv, "{label} α={alpha}: witness sets diverged");
    }
    let (wcut, ccut) = (warm.cut_value(), cold.cut_value());
    assert_eq!(
        wcut.to_bits(),
        ccut.to_bits(),
        "{label} α={alpha}: cut value diverged ({wcut} vs {ccut})"
    );
    w.is_some()
}

/// The seeded sweep: a bisection α schedule (the real workload shape)
/// against a from-scratch network re-solved at every α.
#[test]
fn resolve_after_alpha_bump_is_bit_identical_to_scratch() {
    for seed in 0..iters() as u64 {
        let mut rng = XorShift::new(0xA55E ^ (seed * 7919));
        let g = rng.random_graph(6, 14, 35 + (seed % 30));
        for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
            for (name, mut warm, mut cold) in networks(&g) {
                cold.set_warm_start(false);
                let label = format!("seed {seed} {name} {backend:?}");
                let (mut l, mut u) = (0.0f64, 1.0 + g.num_vertices() as f64);
                for _ in 0..18 {
                    if u - l < 1e-7 {
                        break;
                    }
                    let alpha = (l + u) / 2.0;
                    if check(&label, alpha, &mut warm, &mut cold, backend) {
                        l = alpha;
                    } else {
                        u = alpha;
                    }
                }
            }
        }
    }
}

/// An adversarial non-monotone α schedule: repeated descents below the
/// previous probe (but above the checkpointed lower bound) force the
/// restore path; jumps back up force direct resolves.
#[test]
fn non_monotone_schedules_hit_restore_and_resolve_paths() {
    for seed in 0..iters() as u64 {
        let mut rng = XorShift::new(0xBEE5 ^ (seed * 104_729));
        let g = rng.random_graph(6, 12, 45);
        let schedule = [0.25, 1.5, 0.9, 2.5, 0.6, 3.5, 0.3, 1.1, 4.0, 0.8];
        for backend in [FlowBackend::Dinic, FlowBackend::PushRelabel] {
            for (name, mut warm, mut cold) in networks(&g) {
                cold.set_warm_start(false);
                let label = format!("seed {seed} {name} {backend:?} (non-monotone)");
                for &alpha in &schedule {
                    check(&label, alpha, &mut warm, &mut cold, backend);
                }
                let stats = warm.probe_stats();
                assert_eq!(stats.probes, schedule.len(), "{label}: probe count");
                assert!(
                    stats.resolve_hits > 0,
                    "{label}: schedule never reused flow state"
                );
            }
        }
    }
}

/// A backend switch mid-sequence must retire the old solver's flow state
/// (the two backends' conventions never mix) and still agree with cold
/// solves afterwards.
#[test]
fn backend_switch_mid_sequence_stays_correct() {
    for seed in 0..8u64 {
        let mut rng = XorShift::new(0xC0DE ^ (seed * 31));
        let g = rng.random_graph(6, 12, 40);
        let members = all(&g);
        let mut warm = build_edge_network(&g, &members);
        let mut cold = build_edge_network(&g, &members);
        cold.set_warm_start(false);
        let schedule = [
            (0.5, FlowBackend::Dinic),
            (1.5, FlowBackend::Dinic),
            (1.0, FlowBackend::PushRelabel),
            (2.0, FlowBackend::PushRelabel),
            (1.2, FlowBackend::Dinic),
            (2.5, FlowBackend::Dinic),
        ];
        for &(alpha, backend) in &schedule {
            check(
                &format!("seed {seed} switch"),
                alpha,
                &mut warm,
                &mut cold,
                backend,
            );
        }
    }
}

/// `exact` (which now rides the shared α-search with parametric reuse)
/// returns the same answer as a reuse-disabled run of the same search —
/// the end-to-end closure of the per-probe checks above.
#[test]
fn exact_results_match_between_parametric_and_scratch_probes() {
    use dsd::core::{alpha_search, density_gap, exact, NetworkProbe};

    for seed in 0..iters() as u64 {
        let mut rng = XorShift::new(0xD1FF ^ (seed * 271));
        let g = rng.random_graph(6, 14, 40);
        for psi in [Pattern::edge(), Pattern::triangle()] {
            let (reference, ref_stats) = exact(&g, &psi, FlowBackend::Dinic);
            if reference.is_empty() {
                continue;
            }
            // Re-run the identical search with reuse disabled.
            let members = all(&g);
            let mut net = match psi.vertex_count() {
                2 => build_edge_network(&g, &members),
                _ => build_clique_network(&g, &members, psi.vertex_count()),
            };
            net.set_warm_start(false);
            let mut stats = dsd::core::exact::ExactStats::default();
            let outcome = alpha_search(
                &mut NetworkProbe::new(&mut net, FlowBackend::Dinic),
                ref_stats.initial_bounds,
                density_gap(g.num_vertices()),
                usize::MAX,
                &mut stats,
            );
            let mut scratch = outcome.witness.unwrap_or_default();
            scratch.sort_unstable();
            assert_eq!(
                scratch,
                reference.vertices,
                "seed {seed} {}: parametric vs scratch exact diverged",
                psi.name()
            );
            assert_eq!(stats.iterations, ref_stats.iterations, "same probe count");
            assert_eq!(stats.resolve_hits, 0, "scratch run must not reuse");
            assert!(
                ref_stats.resolve_hits > 0,
                "seed {seed} {}: parametric run never reused flow state",
                psi.name()
            );
        }
    }
}
