//! `dsd` — command-line densest subgraph discovery, driven by the
//! cache-reusing `DsdEngine` and the multi-graph `DsdService`.
//!
//! ```text
//! dsd <edge-list-file> [--psi <pattern>] [--method <method>]
//!                      [--objective <objective>] [--backend <backend>]
//!                      [--tolerance <t>] [--budget <probes>]
//!                      [--query v1,v2,...] [--threads <n>]
//!                      [--substrate-budget <bytes>] [--stats]
//! dsd batch <request-file> [--threads <n>] [--substrate-budget <bytes>]
//!                          [--shards <n>]
//! dsd serve <request-file> [--budget <bytes>] [--workers <n>]
//!                          [--queue-depth <n>] [--deadline-ms <n>]
//!                          [--deadline-probes <n>] [--shards <n>]
//!
//! patterns:   edge | triangle | clique:<h> | star:<x> | 2-star | 3-star |
//!             c3-star | diamond | 2-triangle | 3-triangle | basket
//! methods:    auto (default) | exact | core-exact | peel | inc-app | core-app
//! objectives: densest (default) | top-k:<k> | at-least:<k> | at-most:<k>
//! backends:   dinic (default) | push-relabel
//! ```
//!
//! Reads a whitespace edge list (`# comments` allowed, `# n <N>` header
//! optional) and prints the solution plus the engine's solve statistics.
//! `--query` runs the Section-6.3 variant (edge density, must contain the
//! given vertices). `--stats` prints the Figure-18-style statistics
//! instead. `--threads` sets the worker count for parallel substrate
//! passes and batch execution (default 1). `--substrate-budget` caps the
//! bytes the Ψ instance store may occupy (suffixes `k`/`m`/`g` accepted,
//! `0` disables materialization, `unlimited` lifts the cap); oversized
//! substrates transparently fall back to streaming enumeration.
//!
//! # Batch mode
//!
//! `dsd batch` serves a whole request file through one `DsdService`:
//! requests are grouped by (graph, Ψ) so duplicate substrate work is paid
//! once, and executed across `--threads` workers. The file holds one
//! directive per line (`#` comments and blank lines allowed):
//!
//! ```text
//! # register a named graph from an edge-list file
//! graph <name> <edge-list-file>
//! # issue a request against a registered graph (same flags as above)
//! req <name> [--psi <pattern>] [--objective <objective>] [--method <m>]
//!            [--backend <b>] [--tolerance <t>] [--budget <probes>]
//!            [--query v1,v2,...]
//! # apply edge updates to a registered graph in place: +u:v inserts the
//! # edge {u, v}, -u:v deletes it
//! update <name> [+u:v | -u:v]...
//! ```
//!
//! Directives execute in file order: an `update` line first flushes the
//! requests accumulated above it (one grouped batch), then patches the
//! graph — so update and query traffic genuinely interleave against the
//! same registered engines (incremental k-core repair, epoch bump, no
//! re-registration). Malformed directives and failed requests are
//! reported on stderr and make the exit code 1, but never stop the rest
//! of the file: every valid request still prints its solution.
//!
//! # Serve mode
//!
//! `dsd serve` drives the same request-file format through the
//! `dsd_core::serve` runtime instead of synchronous batches: jobs stream
//! into per-graph admission queues (an `update` barriers only its own
//! graph — no global flush), `--workers` threads pull across graphs, and
//! the `--budget` byte budget is enforced *globally* by the substrate
//! governor, which evicts least-recently-used (graph, Ψ) substrates and
//! rebuilds them on demand. `--queue-depth` bounds each graph's queue;
//! when a queue fills, the driver applies backpressure (waits out its
//! oldest pending job) rather than dropping requests. `--deadline-ms`
//! attaches a deadline to every job (expired jobs are shed at dispatch)
//! and `--deadline-probes` additionally clamps each deadlined query's
//! α-search probe count. Results print in submission order; a final
//! summary reports throughput and the governor's hit/eviction counters.
//!
//! # Sharded execution
//!
//! `--shards <n>` (batch and serve) registers every graph as a
//! `ShardedGraph`: the CSR is partitioned into *at most* `n`
//! degeneracy-contiguous shard engines (trailing empty shards are
//! trimmed; registration and per-request output report the actual
//! count) plus a whole-graph spine, exact densest / top-k /
//! at-least-k requests scatter across the shards, the best certified
//! local density prunes shards whose located-core bound cannot beat it,
//! and the spine merge skips the pruned regions — bit-identical answers,
//! less flow work. Updates route to only the shards they touch. In serve
//! mode all shard engines share the governed global byte budget.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

use dsd::core::{
    parse_byte_budget, DsdEngine, DsdRequest, DsdServer, DsdService, FlowBackend, GraphUpdate,
    Method, Objective, Outcome, Parallelism, ServeConfig, ServeError, ServeOutcome, ShardedGraph,
    Ticket,
};
use dsd::datasets::compute_stats;
use dsd::graph::io::read_edge_list;
use dsd::graph::Graph;
use dsd::motif::Pattern;

fn parse_pattern(s: &str) -> Option<Pattern> {
    match s {
        "edge" => Some(Pattern::edge()),
        "triangle" => Some(Pattern::triangle()),
        "2-star" => Some(Pattern::two_star()),
        "3-star" => Some(Pattern::three_star()),
        "c3-star" => Some(Pattern::c3_star()),
        "diamond" => Some(Pattern::diamond()),
        "2-triangle" => Some(Pattern::two_triangle()),
        "3-triangle" => Some(Pattern::three_triangle()),
        "basket" => Some(Pattern::basket()),
        other => {
            if let Some(h) = other.strip_prefix("clique:") {
                h.parse().ok().filter(|&h| h >= 2).map(Pattern::clique)
            } else if let Some(x) = other.strip_prefix("star:") {
                x.parse().ok().filter(|&x| x >= 2).map(Pattern::star)
            } else {
                None
            }
        }
    }
}

fn parse_method(s: &str) -> Option<Method> {
    match s {
        "auto" => Some(Method::Auto),
        "exact" => Some(Method::Exact),
        "core-exact" => Some(Method::CoreExact),
        "peel" => Some(Method::PeelApp),
        "inc-app" => Some(Method::IncApp),
        "core-app" => Some(Method::CoreApp),
        _ => None,
    }
}

fn parse_objective(s: &str) -> Option<Objective> {
    if s == "densest" {
        return Some(Objective::Densest);
    }
    let parse_k = |rest: &str| rest.parse::<usize>().ok().filter(|&k| k >= 1);
    if let Some(rest) = s.strip_prefix("top-k:") {
        return parse_k(rest).map(Objective::TopK);
    }
    if let Some(rest) = s.strip_prefix("at-least:") {
        return parse_k(rest).map(Objective::AtLeastK);
    }
    if let Some(rest) = s.strip_prefix("at-most:") {
        return parse_k(rest).map(Objective::AtMostK);
    }
    None
}

fn parse_backend(s: &str) -> Option<FlowBackend> {
    match s {
        "dinic" => Some(FlowBackend::Dinic),
        "push-relabel" => Some(FlowBackend::PushRelabel),
        _ => None,
    }
}

/// Renders one `SolveStats.store` entry for the CLI.
fn store_line(store: &dsd::core::StoreStats) -> String {
    if store.materialized {
        format!(
            "substrate: {} instances in {} rows ({} memberships), {:.1} KiB, \
             built in {:.3} ms on {} shard(s) \
             [out-CSR {:.3} ms, enumerate {:.3} ms, assemble {:.3} ms]",
            store.build.instances,
            store.build.rows,
            store.build.memberships,
            store.build.bytes as f64 / 1024.0,
            store.build.build_nanos as f64 / 1e6,
            store.build.shards,
            store.build.csr_build_nanos as f64 / 1e6,
            store.build.enumerate_nanos as f64 / 1e6,
            store.build.assemble_nanos as f64 / 1e6
        )
    } else {
        format!(
            "substrate: streaming fallback ({})",
            match store.fallback {
                Some(dsd::core::StoreFallback::Budget) => "store over byte budget",
                Some(dsd::core::StoreFallback::Capacity) => "store over u32 capacity",
                None => "not attempted",
            }
        )
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dsd <edge-list-file> [--psi <pattern>] [--method <method>] \
         [--objective <objective>] [--backend <backend>] [--tolerance <t>] \
         [--budget <probes>] [--query v1,v2,...] [--threads <n>] \
         [--substrate-budget <bytes>] [--stats]\n\
         \x20      dsd batch <request-file> [--threads <n>] \
         [--substrate-budget <bytes>] [--shards <n>]\n\
         \x20      dsd serve <request-file> [--budget <bytes>] [--workers <n>] \
         [--queue-depth <n>] [--deadline-ms <n>] [--deadline-probes <n>] \
         [--shards <n>]"
    );
    ExitCode::FAILURE
}

fn load_graph(path: &str) -> Result<Graph, String> {
    File::open(path)
        .map_err(|e| e.to_string())
        .and_then(|f| read_edge_list(BufReader::new(f)).map_err(|e| e.to_string()))
}

/// Parses one `req <graph> [flags...]` directive into a routed request.
fn parse_req_directive(tokens: &[&str]) -> Result<DsdRequest, String> {
    let graph = tokens.first().ok_or("req needs a graph name")?;
    let mut psi = Pattern::edge();
    let mut objective = Objective::Densest;
    let mut method = Method::Auto;
    let mut backend = FlowBackend::Dinic;
    let mut tolerance: Option<f64> = None;
    let mut budget: Option<usize> = None;

    let mut it = tokens[1..].iter();
    while let Some(&flag) = it.next() {
        let mut value = || -> Result<&str, String> {
            it.next().copied().ok_or(format!("{flag} needs a value"))
        };
        match flag {
            "--psi" => {
                let v = value()?;
                psi = parse_pattern(v).ok_or(format!("unknown pattern {v:?}"))?;
            }
            "--objective" => {
                let v = value()?;
                objective = parse_objective(v).ok_or(format!("unknown objective {v:?}"))?;
            }
            "--method" => {
                let v = value()?;
                method = parse_method(v).ok_or(format!("unknown method {v:?}"))?;
            }
            "--backend" => {
                let v = value()?;
                backend = parse_backend(v).ok_or(format!("unknown backend {v:?}"))?;
            }
            "--tolerance" => {
                let v = value()?;
                tolerance = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|t| *t >= 0.0)
                        .ok_or(format!("bad --tolerance {v:?}"))?,
                );
            }
            "--budget" => {
                let v = value()?;
                budget = Some(v.parse().map_err(|_| format!("bad --budget {v:?}"))?);
            }
            "--query" => {
                let v = value()?;
                let parsed: Result<Vec<u32>, _> = v.split(',').map(str::parse).collect();
                match parsed {
                    Ok(vs) if !vs.is_empty() => objective = Objective::WithQuery(vs),
                    _ => return Err(format!("bad --query list {v:?}")),
                }
            }
            other => return Err(format!("unknown req flag {other:?}")),
        }
    }
    let mut req = DsdRequest::new(&psi)
        .on(*graph)
        .objective(objective)
        .method(method)
        .flow_backend(backend);
    if let Some(t) = tolerance {
        req = req.tolerance(t);
    }
    if let Some(b) = budget {
        req = req.step_budget(b);
    }
    Ok(req)
}

/// Parses one `+u:v` / `-u:v` update token.
fn parse_update_token(token: &str) -> Result<GraphUpdate, String> {
    let (insert, rest) = match token.split_at_checked(1) {
        Some(("+", rest)) => (true, rest),
        Some(("-", rest)) => (false, rest),
        _ => return Err(format!("update token {token:?} must start with + or -")),
    };
    let Some((u, v)) = rest.split_once(':') else {
        return Err(format!(
            "update token {token:?} needs the form +u:v or -u:v"
        ));
    };
    match (u.parse::<u32>(), v.parse::<u32>()) {
        (Ok(u), Ok(v)) if insert => Ok(GraphUpdate::Insert(u, v)),
        (Ok(u), Ok(v)) => Ok(GraphUpdate::Delete(u, v)),
        _ => Err(format!("bad vertex ids in update token {token:?}")),
    }
}

/// Parses one `update <graph> <tokens...>` directive.
fn parse_update_directive(tokens: &[&str]) -> Result<(String, Vec<GraphUpdate>), String> {
    let graph = tokens.first().ok_or("update needs a graph name")?;
    if tokens.len() == 1 {
        return Err("update needs at least one +u:v / -u:v token".into());
    }
    let updates = tokens[1..]
        .iter()
        .map(|t| parse_update_token(t))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((graph.to_string(), updates))
}

/// Drains `pending` through one grouped `solve_batch`, printing solutions
/// with global request indices. Returns the number of failed requests.
fn flush_requests(
    service: &DsdService,
    pending: &mut Vec<DsdRequest>,
    next_index: &mut usize,
) -> usize {
    if pending.is_empty() {
        return 0;
    }
    let outcome = service.solve_batch(std::mem::take(pending));
    let mut failed = 0usize;
    for (offset, result) in outcome.solutions.iter().enumerate() {
        let i = *next_index + offset;
        match result {
            Ok(s) => println!(
                "#{i}: {:?} via {:?}: density {:.6}, {} vertices [{:?}] (epoch {})",
                s.objective,
                s.method,
                s.density,
                s.len(),
                s.guarantee,
                s.stats.epoch
            ),
            Err(e) => {
                failed += 1;
                eprintln!("#{i}: error: {e}");
            }
        }
    }
    *next_index += outcome.solutions.len();
    let st = &outcome.stats;
    println!(
        "batch: {:.3} ms wall, {} groups, {} substrate builds + {} hits, \
         {} flow probes ({} warm resolves), {:.0}% worker utilization",
        st.wall_nanos as f64 / 1e6,
        st.groups,
        st.substrate_builds,
        st.substrate_hits,
        st.flow_probes,
        st.flow_resolve_hits,
        st.utilization() * 100.0
    );
    println!(
        "substrate: {:.1} KiB built in {:.3} ms this batch, {:.1} KiB resident",
        st.store_bytes_built as f64 / 1024.0,
        st.store_build_nanos as f64 / 1e6,
        st.substrate_bytes as f64 / 1024.0
    );
    println!(
        "networks: {} cache hits / {} misses, {:.1} KiB cached",
        st.network_hits,
        st.network_misses,
        st.network_bytes as f64 / 1024.0
    );
    failed
}

/// Drains `pending` through the sharded executors, one scatter-gather
/// solve per request (sharding replaces batch grouping as the reuse
/// story: each shard engine's substrates stay warm across requests).
fn flush_requests_sharded(
    catalog: &HashMap<String, Arc<ShardedGraph>>,
    pending: &mut Vec<DsdRequest>,
    next_index: &mut usize,
) -> usize {
    if pending.is_empty() {
        return 0;
    }
    let t0 = std::time::Instant::now();
    let mut failed = 0usize;
    let mut scattered = 0usize;
    let mut shards_pruned = 0usize;
    let requests = std::mem::take(pending);
    let count = requests.len();
    for req in requests {
        let i = *next_index;
        *next_index += 1;
        let Some(name) = req.graph_name() else {
            failed += 1;
            eprintln!("#{i}: error: request names no graph (build it with .on(name))");
            continue;
        };
        let Some(sharded) = catalog.get(name) else {
            failed += 1;
            eprintln!("#{i}: error: no graph named {name:?} in the catalog");
            continue;
        };
        let out = sharded.solve_explained(&req);
        // Report the partition's *actual* shard count (trailing empty
        // shards are trimmed), not what the command line asked for.
        let shard_note = if out.scattered {
            format!(
                ", {} shards, {} pruned",
                out.shards_total, out.shards_pruned
            )
        } else {
            String::new()
        };
        if out.scattered {
            scattered += 1;
            shards_pruned += out.shards_pruned;
        }
        let s = &out.solution;
        println!(
            "#{i}: {:?} via {:?}: density {:.6}, {} vertices [{:?}] (epoch {}{shard_note})",
            s.objective,
            s.method,
            s.density,
            s.len(),
            s.guarantee,
            s.stats.epoch
        );
    }
    println!(
        "batch: {:.3} ms wall, {count} requests, {scattered} scatter-gather, \
         {shards_pruned} shard solves pruned by located-core bounds",
        t0.elapsed().as_secs_f64() * 1e3,
    );
    failed
}

fn run_batch(args: &[String]) -> ExitCode {
    let mut file: Option<&str> = None;
    let mut threads = 1usize;
    let mut shards = 1usize;
    let mut substrate_budget: Option<Option<u64>> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("bad --threads");
                    return usage();
                }
            },
            "--shards" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => {
                    eprintln!("bad --shards");
                    return usage();
                }
            },
            "--substrate-budget" => match it.next().and_then(|s| parse_byte_budget(s)) {
                Some(b) => substrate_budget = Some(b),
                None => {
                    eprintln!("bad --substrate-budget");
                    return usage();
                }
            },
            other if !other.starts_with("--") && file.is_none() => file = Some(other),
            _ => return usage(),
        }
    }
    let Some(path) = file else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut service = DsdService::with_parallelism(Parallelism::new(threads));
    if let Some(budget) = substrate_budget {
        service = service.with_substrate_budget(budget);
    }
    let service = service;
    // `--shards` swaps the execution core: graphs register as partitioned
    // [`ShardedGraph`]s and requests run scatter-gather instead of through
    // `solve_batch` grouping.
    let mut sharded_catalog: HashMap<String, Arc<ShardedGraph>> = HashMap::new();
    if shards > 1 {
        // The partitioner may trim trailing empty shards, so this is the
        // *requested* count; each registration reports what it got.
        println!("batch: {threads} workers, {shards} shards requested");
    } else {
        println!("batch: {threads} workers");
    }
    let mut pending: Vec<DsdRequest> = Vec::new();
    let mut next_index = 0usize;
    let mut failed = 0usize;
    let mut bad_directives = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        // Malformed directives are reported and skipped — the rest of the
        // file (valid requests included) still runs; the exit code says 1.
        let mut fail = |msg: String| {
            eprintln!("{path}:{}: {msg}", lineno + 1);
            bad_directives += 1;
        };
        match tokens[0] {
            "graph" => {
                let [_, name, file] = tokens[..] else {
                    fail("graph needs: graph <name> <edge-list-file>".into());
                    continue;
                };
                match load_graph(file) {
                    Ok(g) => {
                        // Queued requests must see the catalog as it was
                        // above this line — flush before (re)registering,
                        // like `update` does.
                        failed += if shards > 1 {
                            flush_requests_sharded(&sharded_catalog, &mut pending, &mut next_index)
                        } else {
                            flush_requests(&service, &mut pending, &mut next_index)
                        };
                        println!(
                            "registered {name}: {} vertices, {} edges",
                            g.num_vertices(),
                            g.num_edges()
                        );
                        if shards > 1 {
                            let sg = match substrate_budget {
                                Some(b) => ShardedGraph::with_substrate_budget(g, shards, b),
                                None => ShardedGraph::new(g, shards),
                            };
                            println!(
                                "sharded {name}: {} shards ({shards} requested), {} boundary edges",
                                sg.num_shards(),
                                sg.boundary_edges()
                            );
                            sharded_catalog.insert(name.to_string(), Arc::new(sg));
                        } else {
                            service.register(name, g);
                        }
                    }
                    Err(e) => fail(format!("failed to read {file}: {e}")),
                }
            }
            "req" => match parse_req_directive(&tokens[1..]) {
                Ok(req) => pending.push(req),
                Err(e) => fail(e),
            },
            "update" => match parse_update_directive(&tokens[1..]) {
                Ok((name, updates)) => {
                    // Updates interleave with the surrounding requests:
                    // everything queued above sees the pre-update graph.
                    let print_apply = |st: &dsd::core::ApplyStats, suffix: &str| {
                        println!(
                            "updated {name}: +{} -{} (~{} no-ops), epoch {}, k-core {}, \
                             substrates {} repaired / {} rebuilt{suffix}",
                            st.inserted,
                            st.deleted,
                            st.ignored,
                            st.epoch,
                            if st.kcore_patched {
                                "patched"
                            } else {
                                "deferred rebuild"
                            },
                            st.substrates_repaired,
                            st.substrates_rebuilt,
                        );
                    };
                    if shards > 1 {
                        failed +=
                            flush_requests_sharded(&sharded_catalog, &mut pending, &mut next_index);
                        match sharded_catalog.get(&name) {
                            Some(sharded) => {
                                let st = sharded.apply(&updates);
                                print_apply(
                                    &st.spine,
                                    &format!(
                                        ", {} shard(s) touched, {} cross-shard",
                                        st.shards_touched, st.cross_shard
                                    ),
                                );
                            }
                            None => fail(format!("no graph named {name:?} in the catalog")),
                        }
                    } else {
                        failed += flush_requests(&service, &mut pending, &mut next_index);
                        match service.update(&name, &updates) {
                            Ok(st) => print_apply(&st, ""),
                            Err(e) => fail(format!("update failed: {e}")),
                        }
                    }
                }
                Err(e) => fail(e),
            },
            other => fail(format!("unknown directive {other:?}")),
        }
    }
    failed += if shards > 1 {
        flush_requests_sharded(&sharded_catalog, &mut pending, &mut next_index)
    } else {
        flush_requests(&service, &mut pending, &mut next_index)
    };

    if failed > 0 || bad_directives > 0 {
        eprintln!(
            "{failed} of {next_index} requests failed, {bad_directives} malformed directives"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// A submitted serve-mode job awaiting its result: either the global
/// request index (queries) or the target graph's name (updates).
enum PendingJob {
    Query(usize),
    Update(String),
}

/// Redeems the oldest pending ticket, printing its result in submission
/// order. Returns `false` when nothing is pending.
fn settle_one(
    pending: &mut std::collections::VecDeque<(PendingJob, Ticket)>,
    failed: &mut usize,
) -> bool {
    let Some((job, ticket)) = pending.pop_front() else {
        return false;
    };
    match (job, ticket.wait()) {
        (PendingJob::Query(i), Ok(ServeOutcome::Solved(s))) => println!(
            "#{i}: {:?} via {:?}: density {:.6}, {} vertices [{:?}] (epoch {})",
            s.objective,
            s.method,
            s.density,
            s.len(),
            s.guarantee,
            s.stats.epoch
        ),
        (PendingJob::Update(name), Ok(st)) => {
            if let ServeOutcome::Updated(st) = st {
                println!(
                    "updated {name}: +{} -{} (~{} no-ops), epoch {}, k-core {}, \
                     substrates {} repaired / {} rebuilt",
                    st.inserted,
                    st.deleted,
                    st.ignored,
                    st.epoch,
                    if st.kcore_patched {
                        "patched"
                    } else {
                        "deferred rebuild"
                    },
                    st.substrates_repaired,
                    st.substrates_rebuilt,
                );
            }
        }
        (PendingJob::Query(i), Err(e)) => {
            *failed += 1;
            eprintln!("#{i}: error: {e}");
        }
        (PendingJob::Update(name), Err(e)) => {
            *failed += 1;
            eprintln!("update {name}: error: {e}");
        }
        (PendingJob::Query(_), Ok(ServeOutcome::Updated(_))) => unreachable!("query ticket"),
    }
    true
}

/// Submits through the admission controller with backpressure: a full
/// queue waits out the oldest pending job (or briefly yields when none
/// is pending) instead of dropping the request.
fn submit_with_backpressure(
    mut submit: impl FnMut() -> Result<Ticket, ServeError>,
    pending: &mut std::collections::VecDeque<(PendingJob, Ticket)>,
    failed: &mut usize,
) -> Result<Ticket, ServeError> {
    loop {
        match submit() {
            Err(ServeError::Overloaded { .. }) => {
                if !settle_one(pending, failed) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            other => return other,
        }
    }
}

fn run_serve(args: &[String]) -> ExitCode {
    let mut file: Option<&str> = None;
    let mut shards = 1usize;
    let mut config = ServeConfig {
        workers: 2,
        queue_depth: 64,
        substrate_budget: None,
        deadline: None,
        deadline_step_budget: 0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => {
                    eprintln!("bad --shards");
                    return usage();
                }
            },
            "--budget" => match it.next().and_then(|s| parse_byte_budget(s)) {
                Some(b) => config.substrate_budget = b,
                None => {
                    eprintln!("bad --budget");
                    return usage();
                }
            },
            "--workers" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => {
                    eprintln!("bad --workers");
                    return usage();
                }
            },
            "--queue-depth" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.queue_depth = n,
                _ => {
                    eprintln!("bad --queue-depth");
                    return usage();
                }
            },
            "--deadline-ms" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) => config.deadline = Some(std::time::Duration::from_millis(ms)),
                None => {
                    eprintln!("bad --deadline-ms");
                    return usage();
                }
            },
            "--deadline-probes" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => config.deadline_step_budget = n,
                None => {
                    eprintln!("bad --deadline-probes");
                    return usage();
                }
            },
            other if !other.starts_with("--") && file.is_none() => file = Some(other),
            _ => return usage(),
        }
    }
    let Some(path) = file else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "serve: {} workers, queue depth {}, budget {}{}",
        config.workers,
        config.queue_depth,
        match config.substrate_budget {
            Some(b) => format!("{:.1} KiB", b as f64 / 1024.0),
            None => "unlimited".into(),
        },
        if shards > 1 {
            format!(", {shards} shards requested")
        } else {
            String::new()
        }
    );
    let t0 = std::time::Instant::now();
    let server = DsdServer::new(config);
    let mut pending: std::collections::VecDeque<(PendingJob, Ticket)> =
        std::collections::VecDeque::new();
    let mut registered: Vec<String> = Vec::new();
    let mut next_index = 0usize;
    let mut failed = 0usize;
    let mut bad_directives = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let mut fail = |msg: String| {
            eprintln!("{path}:{}: {msg}", lineno + 1);
            bad_directives += 1;
        };
        match tokens[0] {
            "graph" => {
                let [_, name, file] = tokens[..] else {
                    fail("graph needs: graph <name> <edge-list-file>".into());
                    continue;
                };
                match load_graph(file) {
                    Ok(g) => {
                        // Re-registration swaps the engine under the
                        // queue; drain so everything above this line
                        // still ran against the old graph.
                        if server.engine(name).is_some() {
                            while settle_one(&mut pending, &mut failed) {}
                            server.drain();
                        }
                        println!(
                            "registered {name}: {} vertices, {} edges",
                            g.num_vertices(),
                            g.num_edges()
                        );
                        if shards > 1 {
                            let sg = server.register_sharded(name, g, shards);
                            println!(
                                "sharded {name}: {} shards ({shards} requested), {} boundary edges",
                                sg.num_shards(),
                                sg.boundary_edges()
                            );
                        } else {
                            server.register(name, g);
                        }
                        registered.push(name.to_string());
                    }
                    Err(e) => fail(format!("failed to read {file}: {e}")),
                }
            }
            "req" => match parse_req_directive(&tokens[1..]) {
                Ok(req) => {
                    let submitted = submit_with_backpressure(
                        || server.submit(req.clone()),
                        &mut pending,
                        &mut failed,
                    );
                    match submitted {
                        Ok(ticket) => {
                            pending.push_back((PendingJob::Query(next_index), ticket));
                            next_index += 1;
                        }
                        Err(e) => fail(format!("submit failed: {e}")),
                    }
                }
                Err(e) => fail(e),
            },
            "update" => match parse_update_directive(&tokens[1..]) {
                Ok((name, updates)) => {
                    let submitted = submit_with_backpressure(
                        || server.submit_update(name.clone(), updates.clone()),
                        &mut pending,
                        &mut failed,
                    );
                    match submitted {
                        Ok(ticket) => pending.push_back((PendingJob::Update(name), ticket)),
                        Err(e) => fail(format!("update submit failed: {e}")),
                    }
                }
                Err(e) => fail(e),
            },
            other => fail(format!("unknown directive {other:?}")),
        }
    }
    while settle_one(&mut pending, &mut failed) {}
    server.drain();

    let stats = server.stats();
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "serve: {} jobs in {:.3} s ({:.0} jobs/s), {} shed overloaded, {} shed on deadline",
        stats.completed,
        wall,
        stats.completed as f64 / wall.max(1e-9),
        stats.shed_overload,
        stats.shed_deadline,
    );
    let g = &stats.governor;
    println!(
        "governor: {} hits / {} misses, {} evictions ({} rebuilds), \
         {:.1} KiB resident (peak {:.1} KiB), {} budget violations",
        g.hits,
        g.misses,
        g.evictions,
        g.rebuilds,
        g.resident_bytes as f64 / 1024.0,
        g.peak_bytes as f64 / 1024.0,
        g.violations,
    );
    // Flow-network cache totals across every registered spine engine
    // (networks are budgeted and evicted alongside the stores, but their
    // hit/miss traffic is engine-side, not governor-side).
    registered.sort_unstable();
    registered.dedup();
    let mut network_hits = 0usize;
    let mut network_misses = 0usize;
    let mut network_bytes = 0u64;
    for name in &registered {
        if let Some(engine) = server.engine(name) {
            let cs = engine.cache_stats();
            network_hits += cs.network_hits;
            network_misses += cs.network_misses;
            network_bytes += engine.network_bytes();
        }
    }
    println!(
        "networks: {network_hits} cache hits / {network_misses} misses, {:.1} KiB cached",
        network_bytes as f64 / 1024.0
    );

    if failed > 0 || bad_directives > 0 {
        eprintln!("{failed} jobs failed, {bad_directives} malformed directives");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("batch") {
        return run_batch(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(&args[1..]);
    }
    let mut file: Option<&str> = None;
    let mut psi = Pattern::edge();
    let mut method = Method::Auto;
    let mut objective = Objective::Densest;
    let mut backend = FlowBackend::Dinic;
    let mut tolerance: Option<f64> = None;
    let mut budget: Option<usize> = None;
    let mut threads = 1usize;
    let mut substrate_budget: Option<Option<u64>> = None;
    let mut stats = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--psi" => match it.next().and_then(|s| parse_pattern(s)) {
                Some(p) => psi = p,
                None => {
                    eprintln!("unknown pattern");
                    return usage();
                }
            },
            "--method" => match it.next().and_then(|s| parse_method(s)) {
                Some(m) => method = m,
                None => {
                    eprintln!("unknown method");
                    return usage();
                }
            },
            "--objective" => match it.next().and_then(|s| parse_objective(s)) {
                Some(o) => objective = o,
                None => {
                    eprintln!("unknown objective");
                    return usage();
                }
            },
            "--backend" => match it.next().and_then(|s| parse_backend(s)) {
                Some(b) => backend = b,
                None => {
                    eprintln!("unknown backend");
                    return usage();
                }
            },
            "--tolerance" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = Some(t),
                _ => {
                    eprintln!("bad --tolerance");
                    return usage();
                }
            },
            "--budget" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(b) => budget = Some(b),
                None => {
                    eprintln!("bad --budget");
                    return usage();
                }
            },
            "--query" => match it.next() {
                Some(list) => {
                    let parsed: Result<Vec<u32>, _> = list.split(',').map(str::parse).collect();
                    match parsed {
                        Ok(vs) if !vs.is_empty() => objective = Objective::WithQuery(vs),
                        _ => {
                            eprintln!("bad --query list");
                            return usage();
                        }
                    }
                }
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("bad --threads");
                    return usage();
                }
            },
            "--substrate-budget" => match it.next().and_then(|s| parse_byte_budget(s)) {
                Some(b) => substrate_budget = Some(b),
                None => {
                    eprintln!("bad --substrate-budget");
                    return usage();
                }
            },
            "--stats" => stats = true,
            other if !other.starts_with("--") && file.is_none() => {
                file = Some(other);
            }
            _ => return usage(),
        }
    }
    let Some(path) = file else { return usage() };
    let g = match load_graph(path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    if stats {
        let s = compute_stats(&g);
        println!(
            "components: {}, pseudo-diameter: {}, power-law α: {:.3}, max degree: {}",
            s.num_ccs, s.pseudo_diameter, s.power_law_alpha, s.max_degree
        );
        return ExitCode::SUCCESS;
    }

    if matches!(objective, Objective::WithQuery(_)) && psi.vertex_count() != 2 {
        eprintln!(
            "note: --query computes edge density (Section 6.3 variant); --psi {} is ignored",
            psi.name()
        );
    }
    let mut engine = DsdEngine::new(g).with_parallelism(Parallelism::new(threads));
    if let Some(b) = substrate_budget {
        engine = engine.with_substrate_budget(b);
    }
    let engine = engine;
    let mut request = engine
        .request(&psi)
        .objective(objective.clone())
        .method(method)
        .flow_backend(backend);
    if let Some(t) = tolerance {
        request = request.tolerance(t);
    }
    if let Some(b) = budget {
        request = request.step_budget(b);
    }
    let solution = request.solve();

    if solution.outcome == Outcome::Invalid {
        eprintln!("invalid request: {objective:?}");
        return ExitCode::FAILURE;
    }
    // The query variant is defined on edge density regardless of Ψ — label
    // its output accordingly instead of with the requested pattern.
    let density_label = if matches!(solution.objective, Objective::WithQuery(_)) {
        "edge"
    } else {
        psi.name()
    };
    println!(
        "{}-densest ({:?}) via {:?}: density {:.6}, {} vertices [{:?}]",
        density_label,
        solution.objective,
        solution.method,
        solution.density,
        solution.len(),
        solution.guarantee,
    );
    for (i, sub) in solution.subgraphs.iter().enumerate() {
        if solution.subgraphs.len() > 1 {
            println!(
                "#{} (density {:.6}): {:?}",
                i + 1,
                sub.density,
                sub.vertices
            );
        } else {
            println!("vertices: {:?}", sub.vertices);
        }
    }
    let st = &solution.stats;
    println!(
        "solve: {:.3} ms total, {:.3} ms decomposition, {} flow probes \
         ({} warm resolves, {} augment work)",
        st.total_nanos as f64 / 1e6,
        st.decomposition_nanos as f64 / 1e6,
        st.flow_iterations,
        st.flow_resolve_hits,
        st.flow_augment_work,
    );
    if let Some(store) = &st.store {
        println!("{}", store_line(store));
    }
    ExitCode::SUCCESS
}
