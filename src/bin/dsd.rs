//! `dsd` — command-line densest subgraph discovery.
//!
//! ```text
//! dsd <edge-list-file> [--psi <pattern>] [--method <method>]
//!                      [--query v1,v2,...] [--stats]
//!
//! patterns: edge | triangle | clique:<h> | star:<x> | 2-star | 3-star |
//!           c3-star | diamond | 2-triangle | 3-triangle | basket
//! methods:  exact | core-exact (default) | peel | inc-app | core-app
//! ```
//!
//! Reads a whitespace edge list (`# comments` allowed, `# n <N>` header
//! optional), prints the densest subgraph and its density. `--query` runs
//! the Section-6.3 variant (edge density, must contain the given
//! vertices). `--stats` prints the Figure-18-style statistics instead.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use dsd::core::{densest_subgraph, densest_with_query, Method};
use dsd::datasets::compute_stats;
use dsd::graph::io::read_edge_list;
use dsd::motif::Pattern;

fn parse_pattern(s: &str) -> Option<Pattern> {
    match s {
        "edge" => Some(Pattern::edge()),
        "triangle" => Some(Pattern::triangle()),
        "2-star" => Some(Pattern::two_star()),
        "3-star" => Some(Pattern::three_star()),
        "c3-star" => Some(Pattern::c3_star()),
        "diamond" => Some(Pattern::diamond()),
        "2-triangle" => Some(Pattern::two_triangle()),
        "3-triangle" => Some(Pattern::three_triangle()),
        "basket" => Some(Pattern::basket()),
        other => {
            if let Some(h) = other.strip_prefix("clique:") {
                h.parse().ok().filter(|&h| h >= 2).map(Pattern::clique)
            } else if let Some(x) = other.strip_prefix("star:") {
                x.parse().ok().filter(|&x| x >= 2).map(Pattern::star)
            } else {
                None
            }
        }
    }
}

fn parse_method(s: &str) -> Option<Method> {
    match s {
        "exact" => Some(Method::Exact),
        "core-exact" => Some(Method::CoreExact),
        "peel" => Some(Method::PeelApp),
        "inc-app" => Some(Method::IncApp),
        "core-app" => Some(Method::CoreApp),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dsd <edge-list-file> [--psi <pattern>] [--method <method>] \
         [--query v1,v2,...] [--stats]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<&str> = None;
    let mut psi = Pattern::edge();
    let mut method = Method::CoreExact;
    let mut query: Option<Vec<u32>> = None;
    let mut stats = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--psi" => match it.next().and_then(|s| parse_pattern(s)) {
                Some(p) => psi = p,
                None => {
                    eprintln!("unknown pattern");
                    return usage();
                }
            },
            "--method" => match it.next().and_then(|s| parse_method(s)) {
                Some(m) => method = m,
                None => {
                    eprintln!("unknown method");
                    return usage();
                }
            },
            "--query" => match it.next() {
                Some(list) => {
                    let parsed: Result<Vec<u32>, _> =
                        list.split(',').map(str::parse).collect();
                    match parsed {
                        Ok(vs) if !vs.is_empty() => query = Some(vs),
                        _ => {
                            eprintln!("bad --query list");
                            return usage();
                        }
                    }
                }
                None => return usage(),
            },
            "--stats" => stats = true,
            other if !other.starts_with("--") && file.is_none() => {
                file = Some(other);
            }
            _ => return usage(),
        }
    }
    let Some(path) = file else { return usage() };
    let g = match File::open(path)
        .map_err(|e| e.to_string())
        .and_then(|f| read_edge_list(BufReader::new(f)).map_err(|e| e.to_string()))
    {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    if stats {
        let s = compute_stats(&g);
        println!(
            "components: {}, pseudo-diameter: {}, power-law α: {:.3}, max degree: {}",
            s.num_ccs, s.pseudo_diameter, s.power_law_alpha, s.max_degree
        );
        return ExitCode::SUCCESS;
    }

    if let Some(q) = query {
        match densest_with_query(&g, &q) {
            Some(r) => {
                println!(
                    "densest subgraph containing {q:?}: density {:.6}, {} vertices",
                    r.density,
                    r.len()
                );
                println!("vertices: {:?}", r.vertices);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("invalid query vertices");
                ExitCode::FAILURE
            }
        }
    } else {
        let r = densest_subgraph(&g, &psi, method);
        println!(
            "{}-densest subgraph via {method:?}: density {:.6}, {} vertices",
            psi.name(),
            r.density,
            r.len()
        );
        println!("vertices: {:?}", r.vertices);
        ExitCode::SUCCESS
    }
}
