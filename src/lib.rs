//! `dsd` — densest subgraph discovery (Fang et al., PVLDB 2019).
//!
//! This facade crate re-exports the five workspace crates under one roof:
//!
//! * [`graph`] — CSR graph substrate;
//! * [`flow`] — max-flow / min-cut solvers;
//! * [`motif`] — clique listing and pattern enumeration;
//! * [`core`] — the paper's algorithms (Exact/CoreExact, PeelApp/IncApp/
//!   CoreApp, PExact/CorePExact, Nucleus, EMcore, the query variant, and
//!   the extensions);
//! * [`datasets`] — generators, fixtures, and the evaluation registry.
//!
//! ```
//! use dsd::core::{densest_subgraph, Method};
//! use dsd::graph::Graph;
//! use dsd::motif::Pattern;
//!
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! let cds = densest_subgraph(&g, &Pattern::triangle(), Method::CoreExact);
//! assert_eq!(cds.vertices, vec![0, 1, 2, 3]);
//! ```

pub use dsd_core as core;
pub use dsd_datasets as datasets;
pub use dsd_flow as flow;
pub use dsd_graph as graph;
pub use dsd_motif as motif;

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use dsd_core::{
        core_exact, densest_subgraph, densest_with_query, exact, peel_app, top_k_densest,
        DsdResult, FlowBackend, Method,
    };
    pub use dsd_graph::{Graph, GraphBuilder, VertexId, VertexSet};
    pub use dsd_motif::Pattern;
}
