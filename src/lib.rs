//! `dsd` — densest subgraph discovery (Fang et al., PVLDB 2019).
//!
//! This facade crate re-exports the five workspace crates under one roof:
//!
//! * [`graph`] — CSR graph substrate;
//! * [`flow`] — max-flow / min-cut solvers;
//! * [`motif`] — clique listing and pattern enumeration;
//! * [`core`] — the paper's algorithms (Exact/CoreExact, PeelApp/IncApp/
//!   CoreApp, PExact/CorePExact, Nucleus, EMcore, the query variant, the
//!   extensions) and the [`core::engine::DsdEngine`] query engine;
//! * [`datasets`] — generators, fixtures, and the evaluation registry.
//!
//! # Quickstart
//!
//! The engine is the primary API: it owns a graph, memoizes the expensive
//! substrates (Ψ-instance lists, (k, Ψ)-core decompositions, the classical
//! k-core order), and answers every objective through one [`Solution`]
//! shape:
//!
//! ```
//! use dsd::prelude::*;
//!
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! let engine = DsdEngine::new(g);
//! let psi = Pattern::triangle();
//!
//! // Densest subgraph, method picked cost-based (Method::Auto).
//! let cds = engine.request(&psi).solve();
//! assert_eq!(cds.vertices, vec![0, 1, 2, 3]);
//!
//! // Same substrates, different objectives — served from the warm cache.
//! let top2 = engine.request(&psi).objective(Objective::TopK(2)).solve();
//! assert!(top2.stats.substrate.decomposition_cache_hit);
//! let anchored = engine
//!     .request(&psi)
//!     .objective(Objective::WithQuery(vec![4]))
//!     .solve();
//! assert!(anchored.vertices.contains(&4));
//! ```
//!
//! One-off calls can keep using the free functions
//! ([`core::densest_subgraph`] & co.), which shim through a throwaway
//! engine.
//!
//! Graphs are not frozen: [`DsdEngine::apply`] (and
//! [`DsdService::update`] for named graphs) absorbs
//! [`GraphUpdate`](graph::GraphUpdate) batches in place — incremental
//! k-core repair, conservative Ψ-substrate invalidation, lazy CSR
//! materialization — bumping a graph epoch that every solution reports
//! in its stats.
//!
//! [`DsdEngine::apply`]: core::engine::DsdEngine::apply
//! [`DsdService::update`]: core::service::DsdService::update
//!
//! # Serving many graphs and batched workloads
//!
//! The engine is `Send + Sync`; [`DsdService`] puts a catalog of named
//! graphs (each behind its own engine) and a batched, multi-threaded
//! executor on top of it:
//!
//! ```
//! use dsd::prelude::*;
//!
//! let service = DsdService::with_parallelism(Parallelism::new(4));
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (2, 3), (3, 4), (4, 5)]);
//! service.register("toy", g);
//!
//! let psi = Pattern::triangle();
//! let outcome = service.solve_batch(vec![
//!     DsdRequest::new(&psi).on("toy"),
//!     DsdRequest::new(&psi).on("toy").objective(Objective::TopK(2)),
//! ]);
//! assert_eq!(outcome.stats.substrate_builds, 1, "one (graph, Ψ) group");
//! assert_eq!(outcome.solutions[0].as_ref().unwrap().vertices, vec![0, 1, 2, 3]);
//! ```
//!
//! [`Solution`]: core::engine::Solution
//! [`DsdService`]: core::service::DsdService

pub use dsd_core as core;
pub use dsd_datasets as datasets;
pub use dsd_flow as flow;
pub use dsd_graph as graph;
pub use dsd_motif as motif;

/// Convenience re-exports for the common workflow: the engine and serving
/// types plus the free-function shims and the substrate value types they
/// share.
pub mod prelude {
    pub use dsd_core::{
        core_exact, densest_subgraph, densest_with_query, exact, peel_app, top_k_densest,
        ApplyStats, BatchOutcome, BatchStats, DsdEngine, DsdRequest, DsdResult, DsdService,
        FlowBackend, Guarantee, Method, Objective, Outcome, Parallelism, ServiceError, Solution,
        SolveStats,
    };
    pub use dsd_graph::{Graph, GraphBuilder, GraphUpdate, VertexId, VertexSet};
    pub use dsd_motif::Pattern;
}
